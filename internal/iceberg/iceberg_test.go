package iceberg

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mosaic/internal/core"
	"mosaic/internal/xxhash"
)

func seededHash(seed uint64) KeyHash[uint64] {
	return func(key uint64, fn int) uint64 {
		return xxhash.Sum64Pair(key, uint64(fn), seed)
	}
}

func newTable(t testing.TB, capacity int, seed uint64) *Table[uint64, int] {
	t.Helper()
	return NewWithHash[uint64, int](capacity, core.DefaultGeometry, seededHash(seed))
}

func TestPutGetDelete(t *testing.T) {
	tb := newTable(t, 1024, 1)
	if _, ok := tb.Get(42); ok {
		t.Fatal("Get on empty table returned ok")
	}
	if err := tb.Put(42, 100); err != nil {
		t.Fatal(err)
	}
	if v, ok := tb.Get(42); !ok || v != 100 {
		t.Fatalf("Get(42) = %d,%v", v, ok)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if !tb.Delete(42) {
		t.Fatal("Delete(42) = false")
	}
	if tb.Delete(42) {
		t.Fatal("second Delete(42) = true")
	}
	if tb.Len() != 0 {
		t.Fatalf("Len after delete = %d", tb.Len())
	}
	if _, ok := tb.Get(42); ok {
		t.Fatal("Get after delete returned ok")
	}
}

func TestUpdateInPlace(t *testing.T) {
	tb := newTable(t, 1024, 1)
	if err := tb.Put(7, 1); err != nil {
		t.Fatal(err)
	}
	slot1, ok := tb.Slot(7)
	if !ok {
		t.Fatal("Slot(7) missing")
	}
	if err := tb.Put(7, 2); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 1 {
		t.Fatalf("update changed Len to %d", tb.Len())
	}
	slot2, _ := tb.Slot(7)
	if slot1 != slot2 {
		t.Fatalf("update moved item from slot %d to %d (stability violated)", slot1, slot2)
	}
	if v, _ := tb.Get(7); v != 2 {
		t.Fatalf("Get after update = %d", v)
	}
}

func TestStabilityUnderChurn(t *testing.T) {
	// Items never move while resident, regardless of surrounding inserts
	// and deletes. Track the slot of a pinned set of keys across heavy churn.
	tb := newTable(t, 4096, 3)
	rng := rand.New(rand.NewSource(1))
	pinned := map[uint64]core.CPFN{}
	for k := uint64(0); k < 100; k++ {
		if err := tb.Put(k, int(k)); err != nil {
			t.Fatal(err)
		}
		s, _ := tb.Slot(k)
		pinned[k] = s
	}
	live := map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		k := 1000 + uint64(rng.Intn(3000))
		if live[k] {
			tb.Delete(k)
			delete(live, k)
		} else if err := tb.Put(k, 0); err == nil {
			live[k] = true
		}
		if i%1000 == 0 {
			for k, want := range pinned {
				if got, ok := tb.Slot(k); !ok || got != want {
					t.Fatalf("iteration %d: pinned key %d moved from slot %d to %d (ok=%v)",
						i, k, want, got, ok)
				}
			}
		}
	}
}

func TestConflictError(t *testing.T) {
	// A tiny table must eventually report ErrConflict rather than loop or
	// relocate.
	g := core.Geometry{FrontyardSize: 2, BackyardSize: 1, Choices: 2}
	tb := NewWithHash[uint64, int](g.BucketSize()*2, g, seededHash(9))
	var sawConflict bool
	for k := uint64(0); k < 100; k++ {
		if err := tb.Put(k, 0); err != nil {
			if !errors.Is(err, ErrConflict) {
				t.Fatalf("unexpected error type: %v", err)
			}
			sawConflict = true
			break
		}
	}
	if !sawConflict {
		t.Fatal("tiny table accepted 100 keys without conflict")
	}
}

func TestConflictKeyAbsentAfterError(t *testing.T) {
	g := core.Geometry{FrontyardSize: 1, BackyardSize: 1, Choices: 1}
	tb := NewWithHash[uint64, int](g.BucketSize(), g, func(key uint64, fn int) uint64 { return 0 })
	if err := tb.Put(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := tb.Put(2, 2); err != nil {
		t.Fatal(err)
	}
	err := tb.Put(3, 3)
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("want ErrConflict, got %v", err)
	}
	if tb.Contains(3) {
		t.Fatal("conflicted key was partially inserted")
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d after failed insert", tb.Len())
	}
}

func TestHighUtilizationBeforeFirstConflict(t *testing.T) {
	// §4.2: with the default geometry, the first associativity conflict
	// appears only when the table is ≈98% full. Statistical, so allow slack.
	const slots = 1 << 15
	var loads float64
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		tb := newTable(t, slots, uint64(100+trial))
		rng := rand.New(rand.NewSource(int64(trial)))
		for {
			if err := tb.Put(rng.Uint64(), 0); err != nil {
				break
			}
		}
		loads += tb.LoadFactor()
	}
	avg := loads / trials
	if avg < 0.95 {
		t.Errorf("average load factor at first conflict = %.4f, want ≥ 0.95 (paper: ≈0.98)", avg)
	}
	t.Logf("average first-conflict load factor over %d trials: %.4f (paper: ≈0.9803)", trials, avg)
}

func TestBackyardStaysSparse(t *testing.T) {
	// Iceberg's analysis requires the backyard to hold a vanishing fraction
	// of items. At 95% load the backyard should hold well under its share.
	const slots = 1 << 15
	tb := newTable(t, slots, 5)
	rng := rand.New(rand.NewSource(5))
	target := int(0.95 * float64(tb.Cap()))
	for tb.Len() < target {
		if err := tb.Put(rng.Uint64(), 0); err != nil {
			t.Fatalf("conflict at load %.4f before reaching 95%%", tb.LoadFactor())
		}
	}
	frac := float64(tb.BackyardLen()) / float64(tb.Len())
	// Backyard capacity is 8/64 = 12.5% of slots; occupancy should be well
	// below capacity.
	if frac > 0.125 {
		t.Errorf("backyard holds %.1f%% of items at 95%% load", 100*frac)
	}
	t.Logf("backyard fraction at 95%% load: %.2f%%", 100*frac)
}

func TestAgainstMapModel(t *testing.T) {
	// Differential test against the built-in map over a random op stream.
	tb := newTable(t, 8192, 11)
	model := map[uint64]int{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50000; i++ {
		k := uint64(rng.Intn(6000))
		switch rng.Intn(3) {
		case 0:
			v := rng.Int()
			if err := tb.Put(k, v); err == nil {
				model[k] = v
			} else if _, exists := model[k]; exists {
				t.Fatalf("Put of existing key %d returned %v", k, err)
			}
		case 1:
			got, ok := tb.Get(k)
			want, wok := model[k]
			if ok != wok || (ok && got != want) {
				t.Fatalf("Get(%d) = (%d,%v), model (%d,%v)", k, got, ok, want, wok)
			}
		case 2:
			if tb.Delete(k) != (func() bool { _, ok := model[k]; return ok })() {
				t.Fatalf("Delete(%d) disagrees with model", k)
			}
			delete(model, k)
		}
	}
	if tb.Len() != len(model) {
		t.Fatalf("final Len = %d, model %d", tb.Len(), len(model))
	}
	for k, want := range model {
		if got, ok := tb.Get(k); !ok || got != want {
			t.Fatalf("final Get(%d) = (%d,%v), want %d", k, got, ok, want)
		}
	}
}

func TestSlotMatchesPutSlot(t *testing.T) {
	tb := newTable(t, 4096, 13)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 2000; i++ {
		k := rng.Uint64()
		putSlot, err := tb.PutSlot(k, i)
		if err != nil {
			continue
		}
		if got, ok := tb.Slot(k); !ok || got != putSlot {
			t.Fatalf("Slot(%d) = (%d,%v), PutSlot said %d", k, got, ok, putSlot)
		}
		if !tb.Geometry().ValidCPFN(putSlot) {
			t.Fatalf("PutSlot returned invalid CPFN %d", putSlot)
		}
	}
}

func TestRange(t *testing.T) {
	tb := newTable(t, 4096, 17)
	want := map[uint64]int{}
	for k := uint64(0); k < 500; k++ {
		if err := tb.Put(k, int(k)*3); err != nil {
			t.Fatal(err)
		}
		want[k] = int(k) * 3
	}
	got := map[uint64]int{}
	tb.Range(func(k uint64, v int) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d pairs, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range saw %d=%d, want %d", k, got[k], v)
		}
	}
	// Early termination.
	n := 0
	tb.Range(func(uint64, int) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("Range visited %d pairs after early stop", n)
	}
}

func TestDefaultHashConstructor(t *testing.T) {
	tb := New[string, string](1024, core.DefaultGeometry)
	if err := tb.Put("key", "value"); err != nil {
		t.Fatal(err)
	}
	if v, ok := tb.Get("key"); !ok || v != "value" {
		t.Fatalf("Get = (%q,%v)", v, ok)
	}
}

func TestCapacityRounding(t *testing.T) {
	tb := newTable(t, 1, 1)
	if tb.Cap() != core.DefaultGeometry.BucketSize() {
		t.Fatalf("Cap = %d, want one bucket (%d)", tb.Cap(), core.DefaultGeometry.BucketSize())
	}
	tb = newTable(t, 65, 1)
	if tb.Cap() != 128 {
		t.Fatalf("Cap = %d, want 128", tb.Cap())
	}
}

func TestPutDeleteProperty(t *testing.T) {
	// Inserting any set of distinct keys below half load then deleting them
	// all must leave the table empty with every key absent.
	f := func(keys []uint64) bool {
		uniq := map[uint64]bool{}
		for _, k := range keys {
			uniq[k] = true
		}
		tb := newTable(t, 4*len(uniq)+128, 21)
		for k := range uniq {
			if err := tb.Put(k, 1); err != nil {
				return false
			}
		}
		for k := range uniq {
			if !tb.Delete(k) {
				return false
			}
		}
		return tb.Len() == 0 && tb.BackyardLen() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReuseAfterDelete(t *testing.T) {
	// Fill to conflict, delete a batch, and confirm the table accepts new
	// keys again — slots must actually be reclaimed.
	tb := newTable(t, 4096, 23)
	rng := rand.New(rand.NewSource(23))
	var keys []uint64
	for {
		k := rng.Uint64()
		if err := tb.Put(k, 0); err != nil {
			break
		}
		keys = append(keys, k)
	}
	for _, k := range keys[:len(keys)/2] {
		if !tb.Delete(k) {
			t.Fatalf("delete of inserted key %d failed", k)
		}
	}
	inserted := 0
	for i := 0; i < len(keys)/4; i++ {
		if err := tb.Put(rng.Uint64(), 0); err == nil {
			inserted++
		}
	}
	if inserted < len(keys)/8 {
		t.Fatalf("only %d/%d inserts succeeded after freeing half the table", inserted, len(keys)/4)
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 should panic")
		}
	}()
	NewWithHash[int, int](0, core.DefaultGeometry, func(int, int) uint64 { return 0 })
}

func TestNilHashPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil hash should panic")
		}
	}()
	NewWithHash[int, int](64, core.DefaultGeometry, nil)
}

func TestStringKeys(t *testing.T) {
	tb := NewWithHash[string, int](2048, core.DefaultGeometry, func(key string, fn int) uint64 {
		return xxhash.Sum64([]byte(key), uint64(fn))
	})
	for i := 0; i < 1000; i++ {
		if err := tb.Put(fmt.Sprintf("key-%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i++ {
		if v, ok := tb.Get(fmt.Sprintf("key-%d", i)); !ok || v != i {
			t.Fatalf("Get(key-%d) = (%d,%v)", i, v, ok)
		}
	}
}

func BenchmarkPut(b *testing.B) {
	tb := NewWithHash[uint64, uint64](b.N*2+1024, core.DefaultGeometry, seededHash(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tb.Put(uint64(i)*0x9E3779B97F4A7C15, uint64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	const n = 1 << 16
	tb := NewWithHash[uint64, uint64](n*2, core.DefaultGeometry, seededHash(1))
	for i := 0; i < n; i++ {
		_ = tb.Put(uint64(i), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Get(uint64(i) % n)
	}
}
