package memsim

// End-to-end translation correctness: the CPFN a mosaic TLB hit returns
// must decode — via the page's bucket choices, exactly as the hardware's
// hash units would — to the same physical frame the OS placed the page in.
// This closes the loop across vm, alloc, pagetable, and tlb: a bug in any
// CPFN hand-off (page table leaf, ToC fill, sub-page indexing) breaks it.

import (
	"math/rand"
	"testing"

	"mosaic/internal/core"
	"mosaic/internal/tlb"
	"mosaic/internal/vm"
	"mosaic/internal/xxhash"
)

func TestMosaicTLBHitDecodesToOSFrame(t *testing.T) {
	const seed = 11
	osys, err := vm.New(vm.Config{Frames: 1 << 14, Mode: vm.ModeMosaic, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	// The hardware-side decoder: the same placement hash the OS allocator
	// uses, applied to (ASID, VPN) and the stored CPFN.
	hash := xxhash.NewPlacement(seed)
	geom := core.DefaultGeometry
	numBuckets := uint64((1 << 14) / geom.BucketSize())
	buckets := make([]uint64, geom.HashCount())
	decode := func(asid core.ASID, vpn core.VPN, c core.CPFN) core.PFN {
		geom.Buckets(hash, asid, vpn, numBuckets, buckets)
		return geom.FrameFor(c, buckets)
	}

	mtlb := tlb.NewMosaic(tlb.Geometry{Entries: 64, Ways: 8}, 4)
	rng := rand.New(rand.NewSource(3))
	checked := 0
	for i := 0; i < 50000; i++ {
		vpn := core.VPN(rng.Intn(4000))
		osys.Touch(1, vpn, rng.Intn(3) == 0)

		cpfn, hit := mtlb.Lookup(vpn)
		if !hit {
			// Fill the ToC like the walker: one CPFN per mapped sub-page.
			mvpn, _ := core.MosaicPage(vpn, 4)
			toc := mtlb.InvalidToC()
			for off := 0; off < 4; off++ {
				sub := core.BaseVPN(mvpn, 4, off)
				if c, ok := osys.CPFNFor(1, sub); ok {
					toc[off] = c
				}
			}
			mtlb.Insert(vpn, toc)
			cpfn, hit = mtlb.Lookup(vpn)
			if !hit {
				t.Fatalf("miss immediately after fill for VPN %#x", vpn)
			}
		}
		// The TLB's CPFN must decode to the OS's frame — unless the OS
		// remapped the page since the fill (stale entry), which cannot
		// happen here because memory is ample (no evictions).
		want, ok := osys.Translate(1, vpn)
		if !ok {
			t.Fatalf("page %#x not resident", vpn)
		}
		if got := decode(1, vpn, cpfn); got != want {
			t.Fatalf("VPN %#x: TLB CPFN %d decodes to frame %d, OS has %d", vpn, cpfn, got, want)
		}
		checked++
	}
	if osys.Device().TotalIO() != 0 {
		t.Fatal("evictions occurred; stale-entry caveat violated")
	}
	if checked != 50000 {
		t.Fatalf("checked %d translations", checked)
	}
}

func TestHWEncodingSurvivesFullPath(t *testing.T) {
	// The 7-bit hardware encoding round-trips every CPFN the OS ever
	// produces under heavy allocation churn.
	osys, err := vm.New(vm.Config{Frames: 1 << 12, Mode: vm.ModeMosaic, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	geom := core.DefaultGeometry
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 30000; i++ {
		vpn := core.VPN(rng.Intn(5000)) // oversubscribed: evictions happen
		osys.Touch(1, vpn, true)
		if c, ok := osys.CPFNFor(1, vpn); ok {
			raw := geom.EncodeHW(c)
			if raw > 0x7F {
				t.Fatalf("CPFN %d encodes beyond 7 bits: %#x", c, raw)
			}
			if back := geom.DecodeHW(raw); back != c {
				t.Fatalf("hardware round trip %d -> %#x -> %d", c, raw, back)
			}
		}
	}
}
