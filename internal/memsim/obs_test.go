package memsim

import (
	"testing"

	"mosaic/internal/core"
	"mosaic/internal/obs"
	"mosaic/internal/workloads"
)

// TestObservabilityEndToEnd drives a small simulation with the full
// observer bundle attached and checks that every layer reported in:
// shared vm.* counters, sampler series for each unit, finalized
// tlb.<design>.* breakdowns, and at least one structured event.
func TestObservabilityEndToEnd(t *testing.T) {
	ob := obs.NewObserver(256)
	s := newSim(t, Config{
		Frames:     1 << 16,
		Specs:      specs(64, 8, 4),
		CheckEvery: 512,
		Obs:        ob,
	})
	const refs = 2048
	for i := 0; i < refs; i++ {
		s.Access(uint64(workloads.DefaultHeapBase)+uint64(i%256)*core.PageSize, false)
	}
	m := s.FinalizeMetrics()

	if got := m.CounterValue("vm.access"); got != refs {
		t.Errorf("vm.access = %d, want %d", got, refs)
	}
	if m.CounterValue("vm.fault.minor") == 0 {
		t.Error("vm.fault.minor = 0, want > 0 (cold pages were touched)")
	}

	// Finalized per-unit breakdown, one namespace per design point.
	for _, p := range []string{"tlb.vanilla", "tlb.mosaic_4"} {
		hits, misses := m.CounterValue(p+".hit"), m.CounterValue(p+".miss")
		if hits+misses != refs {
			t.Errorf("%s: hit+miss = %d, want %d", p, hits+misses, refs)
		}
	}

	// Sampler recorded full windows for every per-unit probe.
	sp := s.Sampler()
	if sp == nil {
		t.Fatal("Sampler() = nil with observer attached")
	}
	if sp.Refs() != refs {
		t.Errorf("sampler refs = %d, want %d", sp.Refs(), refs)
	}
	series := make(map[string]obs.Series)
	for _, sr := range sp.Series() {
		series[sr.Name] = sr
	}
	for _, name := range []string{"tlb.vanilla.hit_rate", "tlb.mosaic_4.hit_rate", "vm.utilization", "vm.fault.rate"} {
		sr, ok := series[name]
		if !ok {
			t.Errorf("sampler missing series %q", name)
			continue
		}
		if len(sr.Values) != refs/256 {
			t.Errorf("%s: %d points, want %d", name, len(sr.Values), refs/256)
		}
	}
	// The second round re-touches the same 256 pages; mosaic-4's window
	// hit rate must reach 1 at some point while vanilla (64-entry reach
	// over a 256-page set) keeps missing.
	mhr := series["tlb.mosaic_4.hit_rate"].Values
	if mhr[len(mhr)-1] != 1 {
		t.Errorf("mosaic_4 final window hit rate = %v, want 1", mhr[len(mhr)-1])
	}

	// CheckEvery fired 4 times; each pass logs an invariant.pass event.
	var passes int
	for _, e := range ob.Events.Events() {
		if e.Kind == "invariant.pass" {
			passes++
			if e.Fields["checks"] <= 0 {
				t.Errorf("invariant.pass event with %v checks", e.Fields["checks"])
			}
		}
	}
	if passes != refs/512 {
		t.Errorf("invariant.pass events = %d, want %d", passes, refs/512)
	}
}

// TestRegisterLivePublishes: a publisher attached to the sampler window
// carries the live simulator state (reference clock, per-unit TLB
// counters) in every published snapshot, torn-free at window boundaries.
func TestRegisterLivePublishes(t *testing.T) {
	ob := obs.NewObserver(256)
	s := newSim(t, Config{Frames: 1 << 16, Specs: specs(64, 8, 4), Obs: ob})
	pub := obs.NewPublisher(ob.Metrics)
	s.RegisterLive(pub)
	pub.AttachSampler(ob.Sampler)

	const refs = 1000
	for i := 0; i < refs; i++ {
		s.Access(uint64(workloads.DefaultHeapBase)+uint64(i%256)*core.PageSize, false)
	}
	p, ok := pub.Load()
	if !ok {
		t.Fatal("no publication after 1000 refs at window 256")
	}
	if p.Refs != 768 {
		t.Errorf("publication refs = %d, want 768 (last full window)", p.Refs)
	}
	if got := p.Snap.Gauges["sim.refs.total"]; got != float64(p.Refs) {
		t.Errorf("sim.refs.total = %v, want %d (the same boundary)", got, p.Refs)
	}
	for _, pfx := range []string{"tlb.vanilla", "tlb.mosaic_4"} {
		hits, misses := p.Snap.Gauges[pfx+".live.hits"], p.Snap.Gauges[pfx+".live.misses"]
		if hits+misses != float64(p.Refs) {
			t.Errorf("%s live hits+misses = %v, want %d", pfx, hits+misses, p.Refs)
		}
		if p.Snap.Gauges[pfx+".live.lookups"] != float64(p.Refs) {
			t.Errorf("%s live lookups = %v, want %d", pfx, p.Snap.Gauges[pfx+".live.lookups"], p.Refs)
		}
	}
	// FinalizeMetrics flushes the partial window, publishing the tail.
	s.FinalizeMetrics()
	p, _ = pub.Load()
	if p.Refs != refs {
		t.Errorf("post-finalize publication refs = %d, want %d", p.Refs, refs)
	}
}

// TestFinalizeMetricsIdempotent guards against double-counting when a
// driver calls FinalizeMetrics more than once (e.g. once for the JSON
// result and once for the text table).
func TestFinalizeMetricsIdempotent(t *testing.T) {
	s := newSim(t, Config{Frames: 1 << 16, Specs: specs(64, 8)})
	for i := 0; i < 100; i++ {
		s.Access(uint64(workloads.DefaultHeapBase)+uint64(i)*core.PageSize, false)
	}
	first := s.FinalizeMetrics().CounterValue("tlb.vanilla.miss")
	second := s.FinalizeMetrics().CounterValue("tlb.vanilla.miss")
	if first == 0 || first != second {
		t.Errorf("tlb.vanilla.miss after 1st/2nd finalize = %d/%d, want equal and nonzero", first, second)
	}
}

// TestHotPathZeroAllocs pins the acceptance criterion that the
// per-reference path allocates nothing once the working set is faulted
// in and no sampler/event log is attached (the default for library use).
func TestHotPathZeroAllocs(t *testing.T) {
	s := newSim(t, Config{Frames: 1 << 16, Specs: specs(64, 8, 4)})
	const pages = 64
	for p := 0; p < pages; p++ {
		s.Access(uint64(workloads.DefaultHeapBase)+uint64(p)*core.PageSize, false)
	}
	var p int
	avg := testing.AllocsPerRun(1000, func() {
		s.Access(uint64(workloads.DefaultHeapBase)+uint64(p%pages)*core.PageSize, false)
		p++
	})
	if avg != 0 {
		t.Errorf("steady-state Access allocates %v objects/op, want 0", avg)
	}
}

// Paired benchmarks for the sampler-overhead acceptance criterion:
// compare ns/op of BenchmarkAccessSampled (default fig6 cadence) against
// BenchmarkAccessNoObs. The delta must stay within ~5%.
func benchAccess(b *testing.B, ob *obs.Observer) {
	s, err := New(Config{Frames: 1 << 16, Specs: specs(64, 8, 4), Obs: ob})
	if err != nil {
		b.Fatal(err)
	}
	const pages = 512
	for p := 0; p < pages; p++ {
		s.Access(uint64(workloads.DefaultHeapBase)+uint64(p)*core.PageSize, false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Access(uint64(workloads.DefaultHeapBase)+uint64(i%pages)*core.PageSize, false)
	}
}

func BenchmarkAccessNoObs(b *testing.B)   { benchAccess(b, nil) }
func BenchmarkAccessSampled(b *testing.B) { benchAccess(b, obs.NewObserver(65536)) }
