// Package memsim is the repository's gem5 substitute: a trace-driven
// memory-system simulator that reproduces the paper's dual-TLB methodology
// (§3.1). Every workload reference is fed simultaneously to a conventional
// TLB and any number of mosaic TLBs — one per (geometry, arity) point of
// Figure 6 — each backed by its own page-table walker, so a single workload
// pass yields the entire associativity × arity grid under an identical
// reference stream.
//
// The OS underneath is a mosaic-mode vm.System with ample memory (Figure 6
// runs fit in DRAM, as in the paper's 16 GB gem5 machine), so placement is
// iceberg-constrained and CPFNs are real. Vanilla TLB entries store the
// resulting PFNs; TLB miss counts are placement-independent either way.
//
// With caches enabled, each TLB unit gets a private cache hierarchy
// (Table 1a) through which both its page-table walks and the data stream
// flow, exactly as gem5 attaches a walker per TLB.
package memsim

import (
	"fmt"
	"strings"

	"mosaic/internal/cache"
	"mosaic/internal/core"
	"mosaic/internal/invariant"
	"mosaic/internal/obs"
	"mosaic/internal/pagetable"
	"mosaic/internal/tlb"
	"mosaic/internal/trace"
	"mosaic/internal/vm"
	"mosaic/internal/workloads"
)

// TLBSpec names one TLB design point.
type TLBSpec struct {
	// Geometry is the entry count and associativity.
	Geometry tlb.Geometry
	// Arity is the mosaic arity; 0 selects a vanilla TLB.
	Arity int
	// Coalesce, when nonzero, selects a CoLT-style coalescing TLB with
	// this maximum run length instead (§5.2 baseline). Mutually exclusive
	// with Arity.
	Coalesce int
}

// Label renders the spec the way the paper's figures do ("Vanilla",
// "Mosaic-4", …); coalescing baselines render as "CoLT-<run>".
func (s TLBSpec) Label() string {
	switch {
	case s.Coalesce != 0:
		return fmt.Sprintf("CoLT-%d", s.Coalesce)
	case s.Arity == 0:
		return "Vanilla"
	default:
		return fmt.Sprintf("Mosaic-%d", s.Arity)
	}
}

// Config parameterizes a Simulator.
type Config struct {
	// Frames is the simulated DRAM size in 4 KiB frames. It must
	// comfortably exceed the workload footprint (Figure 6 measures TLB
	// behaviour, not swapping). Default 1<<20 frames (4 GiB).
	Frames int
	// Specs are the TLB design points to drive simultaneously.
	Specs []TLBSpec
	// EnableCaches attaches a Table 1a cache hierarchy per TLB unit.
	EnableCaches bool
	// MemLatency is the DRAM latency in cycles for the cache model.
	MemLatency int
	// Seed seeds the placement hash.
	Seed uint64
	// ASID is the address space the workload runs in (default 1).
	ASID core.ASID
	// EnableWalkCache attaches a per-unit MMU page-walk cache (§5.4) that
	// caches upper-level page-table entries, shortening walks.
	EnableWalkCache bool
	// WalkCacheEntries sizes the walk cache (default 32).
	WalkCacheEntries int
	// CheckEvery, when positive, runs the deep invariant checkers (see
	// Simulator.CheckInvariants) every CheckEvery data references — a
	// debug mode for long simulations. Any violation panics with the full
	// report, stopping the run at the first reference that broke state.
	CheckEvery uint64
	// Obs supplies the observability bundle. The registry is shared with
	// the underlying vm.System (one namespace per run); when the bundle
	// carries a Sampler, the simulator registers its time-series probes on
	// it and ticks it once per data reference. Nil disables sampling and
	// events; metrics still work through a private registry.
	Obs *obs.Observer
}

// Result is the outcome of one TLB design point after a run.
type Result struct {
	Spec TLBSpec
	// TLB is the hit/miss breakdown.
	TLB tlb.Stats
	// Walks is the number of page-table walks performed (== TLB misses).
	Walks uint64
	// WalkAccesses is the number of memory references those walks issued.
	WalkAccesses uint64
	// AMAT is the average memory access time in cycles (caches enabled
	// only), averaged over data references and walk references together.
	AMAT float64
	// TotalCycles is the summed latency of all data and walk accesses
	// (caches enabled only) — the comparable end-to-end cost.
	TotalCycles uint64
	// WalkCycles is the latency spent in page-table walks alone (caches
	// enabled only). WalkCycles/TotalCycles is the address-translation
	// share of memory time — the paper's intro reports 20–30% for
	// TLB-bound applications.
	WalkCycles uint64
	// CacheStats holds per-level cache counters (caches enabled only).
	CacheStats []cache.Stats
	// WalkCacheHits counts upper-level walk reads absorbed by the MMU
	// walk cache (walk-cache enabled only).
	WalkCacheHits uint64
	// CoalescingFactor is the mean pages covered per fill (CoLT units).
	CoalescingFactor float64
}

// unit is one TLB design point with its TLB and caches; the page table it
// walks is selected per access by the faulting ASID.
type unit struct {
	spec       TLBSpec
	vanilla    *tlb.Vanilla
	mosaic     *tlb.Mosaic
	coalesced  *tlb.Coalesced
	caches     *cache.Hierarchy
	pwc        *walkCache
	walks      uint64
	walkRefs   uint64
	pwcHits    uint64
	walkCycles uint64
}

// ptKey identifies a per-process page table: each address space has its
// own radix tree (its own CR3), per arity for the mosaic variants.
type ptKey struct {
	asid  core.ASID
	arity int // 0 = vanilla
}

// Simulator drives the memory system. It implements trace.Sink, so
// workloads can emit straight into it. It is not safe for concurrent use.
type Simulator struct {
	cfg   Config
	os    *vm.System
	units []*unit
	// Page tables are per (ASID, arity): mosaic PTs are shared among units
	// with equal arity (their contents are identical; each unit still
	// walks them independently).
	vanillaPTs map[core.ASID]*pagetable.Vanilla
	mosaicPTs  map[ptKey]*pagetable.Mosaic
	arities    map[int]bool
	paAlloc    pagetable.PAAllocator
	path       []uint64

	// Observability: instrument handles on the hot paths, plus the
	// optional sampler (nil = one pointer compare per reference) and
	// event log.
	metrics    *obs.Registry
	sampler    *obs.Sampler
	events     *obs.EventLog
	cShootdown *obs.Counter // tlb.shootdown
	cFlush     *obs.Counter // tlb.flush
	finalized  bool

	// Invariant checking (Config.CheckEvery).
	sinceCheck  uint64
	clockMono   *invariant.Monotone
	horizonMono *invariant.Monotone
}

// asidTagShift places the ASID above the 36-bit VPN in TLB tags, the
// PCID-style tagging that lets entries from several address spaces coexist.
const asidTagShift = 40

func taggedVPN(asid core.ASID, vpn core.VPN) core.VPN {
	return vpn | core.VPN(uint64(asid)<<asidTagShift)
}

// New builds a Simulator.
func New(cfg Config) (*Simulator, error) {
	if cfg.Frames == 0 {
		cfg.Frames = 1 << 20
	}
	if cfg.ASID == 0 {
		cfg.ASID = 1
	}
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("memsim: config needs at least one TLB spec")
	}
	osys, err := vm.New(vm.Config{Frames: cfg.Frames, Mode: vm.ModeMosaic, Seed: cfg.Seed, Obs: cfg.Obs})
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:         cfg,
		os:          osys,
		mosaicPTs:   make(map[ptKey]*pagetable.Mosaic),
		metrics:     osys.Metrics(), // one namespace shared with the OS layer
		clockMono:   invariant.NewMonotone("memsim.clock-monotone"),
		horizonMono: invariant.NewMonotone("memsim.horizon-monotone"),
	}
	if cfg.Obs != nil {
		s.sampler = cfg.Obs.Sampler
		s.events = cfg.Obs.Events
	}
	s.cShootdown = s.metrics.Counter("tlb.shootdown")
	s.cFlush = s.metrics.Counter("tlb.flush")
	// Page-table nodes live above the workload's physical frames so walk
	// traffic and data traffic never alias in the caches.
	ptBase := uint64(cfg.Frames) * core.PageSize
	s.paAlloc = pagetable.BumpAllocator(ptBase)
	s.vanillaPTs = make(map[core.ASID]*pagetable.Vanilla)
	s.arities = make(map[int]bool)
	for _, spec := range cfg.Specs {
		if err := spec.Geometry.Validate(); err != nil {
			return nil, err
		}
		if spec.Arity != 0 && spec.Coalesce != 0 {
			return nil, fmt.Errorf("memsim: spec %s sets both Arity and Coalesce", spec.Label())
		}
		u := &unit{spec: spec}
		switch {
		case spec.Coalesce != 0:
			u.coalesced = tlb.NewCoalesced(spec.Geometry, spec.Coalesce)
		case spec.Arity == 0:
			u.vanilla = tlb.NewVanilla(spec.Geometry)
		default:
			u.mosaic = tlb.NewMosaic(spec.Geometry, spec.Arity)
			s.arities[spec.Arity] = true
		}
		if cfg.EnableWalkCache {
			n := cfg.WalkCacheEntries
			if n == 0 {
				n = 32
			}
			u.pwc = newWalkCache(n)
		}
		if cfg.EnableCaches {
			h, err := cache.NewHierarchy(cfg.MemLatency, cache.Table1a()...)
			if err != nil {
				return nil, err
			}
			u.caches = h
		}
		s.units = append(s.units, u)
	}
	osys.OnEvict(s.onEvict)
	if s.sampler != nil {
		s.registerProbes()
	}
	return s, nil
}

// slug maps a TLB spec label to a metric-name segment ("Mosaic-4" →
// "mosaic_4") so per-unit series and counters get lawful dotted names.
func slug(label string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(label) {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func (u *unit) stats() tlb.Stats {
	switch {
	case u.vanilla != nil:
		return u.vanilla.Stats()
	case u.coalesced != nil:
		return u.coalesced.Stats()
	default:
		return u.mosaic.Stats()
	}
}

// registerProbes wires the time-series sampler to live simulator state:
// per-unit TLB hit rate and walk latency, per-unit per-level cache MPKI,
// iceberg slot occupancy by level, memory utilization and ghost pressure,
// and swap/fault activity. Ratio probes are windowed (delta-based), so each
// point reflects that window alone, not the run-so-far average.
func (s *Simulator) registerProbes() {
	sp := s.sampler
	for _, u := range s.units {
		u := u
		p := "tlb." + slug(u.spec.Label())
		sp.Ratio(p+".hit_rate", 1,
			func() float64 { return float64(u.stats().Hits) },
			func() float64 { return float64(u.stats().Lookups()) })
		if u.caches != nil {
			sp.Ratio(p+".walk_latency", 1,
				func() float64 { return float64(u.walkCycles) },
				func() float64 { return float64(u.walks) })
			for _, l := range u.caches.Levels() {
				l := l
				sp.Ratio("cache."+slug(u.spec.Label())+"."+slug(l.Config().Name)+".mpki", 1000,
					func() float64 { return float64(l.Stats().Misses) },
					func() float64 { return float64(s.os.Clock()) })
			}
		}
	}
	if mem := s.os.Allocator(); mem != nil {
		geom := mem.Geometry()
		frontCap := float64(mem.NumBuckets()) * float64(geom.FrontyardSize)
		backCap := float64(mem.NumBuckets()) * float64(geom.BackyardSize)
		sp.Gauge("iceberg.frontyard.occupancy", func() float64 { return float64(mem.FrontyardUsed()) / frontCap })
		sp.Gauge("iceberg.backyard.occupancy", func() float64 { return float64(mem.BackyardUsed()) / backCap })
		sp.Gauge("vm.ghost.fraction", func() float64 {
			return float64(s.os.GhostCount()) / float64(mem.NumFrames())
		})
	}
	sp.Gauge("vm.utilization", s.os.Utilization)
	sp.Rate("swap.io.rate", func() float64 { return float64(s.os.Device().TotalIO()) })
	minor := s.metrics.Counter("vm.fault.minor")
	major := s.metrics.Counter("vm.fault.major")
	sp.Rate("vm.fault.rate", func() float64 { return float64(minor.Value() + major.Value()) })
}

// OS exposes the underlying vm.System (swap counters, utilization, …).
func (s *Simulator) OS() *vm.System { return s.os }

// Metrics exposes the run's instrument registry (shared with the OS
// layer): tlb.shootdown, tlb.flush, the vm.* counters, and — after
// FinalizeMetrics — the per-unit tlb.<design>.* breakdown.
func (s *Simulator) Metrics() *obs.Registry { return s.metrics }

// Sampler exposes the time-series sampler, nil when sampling is disabled.
func (s *Simulator) Sampler() *obs.Sampler { return s.sampler }

// RegisterLive wires publish-time gauges for the simulator state that is
// not already a registry instrument — the reference clock, per-unit TLB
// counters, swap I/O totals — so every published snapshot carries enough
// to compute windowed rates (refs/s, hit rate, swap I/O rate) from two
// scrapes alone. The probes are evaluated only at publication (window
// boundaries), on the simulator thread; the per-reference path is
// untouched. Call once, before the run, on the thread that will drive
// the simulator.
func (s *Simulator) RegisterLive(p *obs.Publisher) {
	p.Gauge("sim.refs.total", func() float64 { return float64(s.os.Clock()) })
	p.Gauge("swap.io.total", func() float64 { return float64(s.os.Device().TotalIO()) })
	for _, u := range s.units {
		u := u
		pfx := "tlb." + slug(u.spec.Label())
		p.Gauge(pfx+".live.hits", func() float64 { return float64(u.stats().Hits) })
		p.Gauge(pfx+".live.misses", func() float64 { return float64(u.stats().Misses) })
		p.Gauge(pfx+".live.lookups", func() float64 { return float64(u.stats().Lookups()) })
	}
}

// FinalizeMetrics records each unit's end-of-run TLB breakdown and walk
// totals into the registry (tlb.<design>.hit, .miss, .walk.refs, …) and
// flushes any partial sampler window. It is idempotent: only the first
// call records.
func (s *Simulator) FinalizeMetrics() *obs.Registry {
	if s.finalized {
		return s.metrics
	}
	s.finalized = true
	for _, u := range s.units {
		p := "tlb." + slug(u.spec.Label())
		u.stats().Record(s.metrics, p)
		s.metrics.Counter(p + ".walk.count").Add(u.walks)
		s.metrics.Counter(p + ".walk.refs").Add(u.walkRefs)
		if u.pwc != nil {
			s.metrics.Counter(p + ".walk.pwc_hits").Add(u.pwcHits)
		}
		if u.caches != nil {
			s.metrics.Counter(p + ".walk.cycles").Add(u.walkCycles)
		}
	}
	if s.sampler != nil {
		s.sampler.Flush()
	}
	return s.metrics
}

// vanillaPT returns (creating if needed) the ASID's conventional page table.
func (s *Simulator) vanillaPT(asid core.ASID) *pagetable.Vanilla {
	pt, ok := s.vanillaPTs[asid]
	if !ok {
		pt = pagetable.NewVanilla(nil, s.paAlloc)
		s.vanillaPTs[asid] = pt
	}
	return pt
}

// mosaicPT returns (creating if needed) the ASID's mosaic page table for
// the given arity.
func (s *Simulator) mosaicPT(asid core.ASID, arity int) *pagetable.Mosaic {
	k := ptKey{asid: asid, arity: arity}
	pt, ok := s.mosaicPTs[k]
	if !ok {
		pt = pagetable.NewMosaic(arity, nil, s.paAlloc)
		s.mosaicPTs[k] = pt
	}
	return pt
}

// onEvict keeps page tables and TLBs coherent with the OS: the evicted
// page's leaf entry is cleared and the TLBs shoot down the mapping — for a
// mosaic TLB only the sub-page entry, per §3.1.
func (s *Simulator) onEvict(asid core.ASID, vpn core.VPN) {
	s.cShootdown.Inc()
	if pt, ok := s.vanillaPTs[asid]; ok {
		pt.Unset(vpn)
	}
	for arity := range s.arities {
		if pt, ok := s.mosaicPTs[ptKey{asid: asid, arity: arity}]; ok {
			pt.ClearCPFN(vpn)
		}
	}
	tagged := taggedVPN(asid, vpn)
	for _, u := range s.units {
		switch {
		case u.vanilla != nil:
			u.vanilla.Invalidate(tagged)
		case u.coalesced != nil:
			u.coalesced.Invalidate(tagged)
		default:
			u.mosaic.InvalidateSub(tagged)
		}
	}
}

// FlushTLBs invalidates every entry of every TLB unit — the cost of a
// context switch without ASID tagging.
func (s *Simulator) FlushTLBs() {
	s.cFlush.Inc()
	if s.events != nil {
		s.events.Emit(obs.Event{
			Ref: s.os.Clock(), Component: "memsim", Kind: "tlb.flush", Severity: obs.Info,
			Message: "full TLB flush (untagged context switch)",
		})
	}
	for _, u := range s.units {
		switch {
		case u.vanilla != nil:
			u.vanilla.Flush()
		case u.coalesced != nil:
			u.coalesced.Flush()
		default:
			u.mosaic.Flush()
		}
	}
}

// Access implements trace.Sink: one data reference through the whole
// simulated memory system, from the configured default address space.
func (s *Simulator) Access(va uint64, write bool) {
	s.AccessFrom(s.cfg.ASID, va, write)
}

// AccessFrom performs one data reference from the given address space.
// TLB entries are ASID-tagged (PCID-style), so entries from several
// processes coexist; use FlushTLBs to model untagged context switches.
func (s *Simulator) AccessFrom(asid core.ASID, va uint64, write bool) {
	s.step(asid, va, write)
	if s.cfg.CheckEvery > 0 {
		s.sinceCheck++
		if s.sinceCheck >= s.cfg.CheckEvery {
			s.sinceCheck = 0
			s.mustCheck()
		}
	}
	if s.sampler != nil {
		s.sampler.Tick()
	}
}

// step is the per-reference core shared by the scalar and batch paths:
// touch the OS, translate, and drive every TLB unit. The per-reference
// sampler tick and invariant cadence live in the callers, so the batch
// path can hoist their checks out of its inner loop.
func (s *Simulator) step(asid core.ASID, va uint64, write bool) {
	vpn := core.VPNOf(va)
	var pfn core.PFN
	if res := s.os.Touch(asid, vpn, write); res != vm.Hit {
		pfn = s.fault(asid, vpn)
	} else {
		pfn, _ = s.os.Translate(asid, vpn)
	}
	pa := uint64(pfn)*core.PageSize + core.PageOffset(va)

	for _, u := range s.units {
		s.lookupAndFill(u, asid, vpn)
		if u.caches != nil {
			u.caches.Access(pa, write)
		}
	}
}

// fault installs a freshly faulted mapping in the page tables. It is the
// cold half of step, outlined so the hot loop stays compact, and it
// returns the PFN it already has in hand so the hit path's translate is
// not repeated after a fault.
func (s *Simulator) fault(asid core.ASID, vpn core.VPN) core.PFN {
	pfn, ok := s.os.Translate(asid, vpn)
	if !ok {
		//lint:ignore nopanic Touch just returned non-Hit, so the OS faulted the page in; an absent mapping here means vm residency is corrupt
		panic("memsim: page absent immediately after fault")
	}
	cpfn, ok := s.os.CPFNFor(asid, vpn)
	if !ok {
		//lint:ignore nopanic same residency guarantee as the Translate above
		panic("memsim: CPFN absent immediately after fault")
	}
	s.vanillaPT(asid).Set(vpn, pfn)
	for arity := range s.arities {
		s.mosaicPT(asid, arity).SetCPFN(vpn, cpfn)
	}
	return pfn
}

// ProcessBatch implements trace.BatchSink: a whole batch of references
// from the configured default address space, observing exactly the same
// logical reference order — and therefore byte-identical counters,
// histograms, sampler windows, and event ref-indices — as the equivalent
// Access calls.
func (s *Simulator) ProcessBatch(b trace.Batch) {
	s.ProcessBatchFrom(s.cfg.ASID, b)
}

// ProcessBatchFrom is the batched AccessFrom. When neither the sampler
// nor the invariant cadence needs a per-reference tick, the fault check,
// translate, and unit dispatch run in a tight loop with the observer
// branches hoisted out; otherwise each reference takes the full scalar
// path so window boundaries land on identical reference indices.
func (s *Simulator) ProcessBatchFrom(asid core.ASID, b trace.Batch) {
	if s.sampler != nil || s.cfg.CheckEvery > 0 {
		for _, r := range b {
			s.AccessFrom(asid, r.VA(), r.Write())
		}
		return
	}
	for _, r := range b {
		s.step(asid, r.VA(), r.Write())
	}
}

// mustCheck runs CheckInvariants and panics on any violation — the
// Config.CheckEvery debug mode wants a loud, immediate stop at the first
// sampling point where the simulated machine's state is inconsistent.
func (s *Simulator) mustCheck() {
	var r invariant.Report
	s.CheckInvariants(&r)
	if err := r.Err(); err != nil {
		panic("memsim: " + err.Error())
	}
	if s.events != nil {
		s.events.Emit(obs.Event{
			Ref: s.os.Clock(), Component: "memsim", Kind: "invariant.pass", Severity: obs.Info,
			Fields: map[string]float64{"checks": float64(r.Checks())},
		})
	}
}

// CheckInvariants runs the deep checkers over the whole simulated machine,
// recording any violation on r:
//
//   - the OS state, via vm.System.CheckInvariants (which itself descends
//     into the allocator's bitmap and hashing invariants);
//   - monotonicity of the access clock and of the Horizon LRU ghost
//     threshold across successive calls;
//   - TLB ↔ page-table coherence: every valid entry of every vanilla and
//     mosaic TLB unit must agree with the owning address space's page
//     table. A stale-invalid sub-entry is fine — it is just a future
//     miss — but a valid entry naming a frame the page table no longer
//     maps would let the simulated hardware use a frame the OS gave away.
//     Because mosaic placement is stable, a resident page never moves;
//     remaps happen only through evictions, which shoot the entry down.
//
// Coalesced (CoLT) units are not audited: their runs are rebuilt from
// neighbouring PTEs on every fill and have no single page-table entry to
// compare against.
func (s *Simulator) CheckInvariants(r *invariant.Report) {
	s.os.CheckInvariants(r)
	s.clockMono.Observe(r, s.os.Clock())
	s.horizonMono.Observe(r, s.os.Horizon())

	const vpnMask = 1<<asidTagShift - 1
	for _, u := range s.units {
		label := u.spec.Label()
		switch {
		case u.vanilla != nil:
			u.vanilla.Range(func(key uint64, pfn core.PFN) {
				asid := core.ASID(key >> asidTagShift)
				vpn := core.VPN(key & vpnMask)
				pt, ok := s.vanillaPTs[asid]
				if !r.Checkf(ok, "memsim.tlb-coherence",
					"%s: valid entry for ASID %d, which has no page table", label, asid) {
					return
				}
				got, mapped := pt.Get(vpn)
				if !r.Checkf(mapped, "memsim.tlb-coherence",
					"%s: valid entry for ASID %d VPN %#x, which the page table does not map", label, asid, vpn) {
					return
				}
				r.Checkf(got == pfn, "memsim.tlb-coherence",
					"%s: entry for ASID %d VPN %#x holds PFN %d, page table says %d", label, asid, vpn, pfn, got)
			})
		case u.mosaic != nil:
			arity := u.spec.Arity
			u.mosaic.Range(func(key uint64, toc tlb.ToC) {
				for off, c := range toc {
					if c == core.CPFNInvalid {
						continue
					}
					tagged := core.BaseVPN(core.MVPN(key), arity, off)
					asid := core.ASID(uint64(tagged) >> asidTagShift)
					vpn := core.VPN(uint64(tagged) & vpnMask)
					pt, ok := s.mosaicPTs[ptKey{asid: asid, arity: arity}]
					if !r.Checkf(ok, "memsim.tlb-coherence",
						"%s: valid sub-entry for ASID %d, which has no page table", label, asid) {
						continue
					}
					got, mapped := pt.Get(vpn)
					if !r.Checkf(mapped, "memsim.tlb-coherence",
						"%s: valid sub-entry for ASID %d VPN %#x, which the page table does not map", label, asid, vpn) {
						continue
					}
					r.Checkf(got == c, "memsim.tlb-coherence",
						"%s: sub-entry for ASID %d VPN %#x holds CPFN %d, page table says %d", label, asid, vpn, c, got)
				}
			})
		}
	}
}

func (s *Simulator) lookupAndFill(u *unit, asid core.ASID, vpn core.VPN) {
	tagged := taggedVPN(asid, vpn)
	switch {
	case u.vanilla != nil:
		if _, hit := u.vanilla.Lookup(tagged); hit {
			return
		}
		pfn, ok, path := s.vanillaPT(asid).Walk(vpn, s.path[:0])
		s.walkTraffic(u, path)
		if !ok {
			//lint:ignore nopanic the page table was updated on fault before any TLB lookup, so a resident VPN always walks
			panic(fmt.Sprintf("memsim: vanilla walk failed for resident VPN %#x", vpn))
		}
		u.vanilla.Insert(tagged, pfn)
	case u.coalesced != nil:
		if _, hit := u.coalesced.Lookup(tagged); hit {
			return
		}
		pt := s.vanillaPT(asid)
		pfn, ok, path := pt.Walk(vpn, s.path[:0])
		s.walkTraffic(u, path)
		if !ok {
			//lint:ignore nopanic the page table was updated on fault before any TLB lookup, so a resident VPN always walks
			panic(fmt.Sprintf("memsim: coalescing walk failed for resident VPN %#x", vpn))
		}
		// CoLT's walker inspects the neighbouring PTEs in the same leaf
		// cache line it already fetched, so offering the aligned group for
		// coalescing costs no extra memory traffic. The ASID tag is
		// group-aligned (it lives far above the run bits), so tagging does
		// not split runs.
		run := u.coalesced.MaxRun()
		base := core.VPN(uint64(vpn) &^ uint64(run-1))
		neighbours := make([]tlb.NeighbourPFN, run)
		for i := 0; i < run; i++ {
			npfn, nok := pt.Get(base + core.VPN(i))
			neighbours[i] = tlb.NeighbourPFN{PFN: npfn, OK: nok}
		}
		u.coalesced.Insert(tagged, pfn, neighbours)
	default:
		if _, hit := u.mosaic.Lookup(tagged); hit {
			return
		}
		toc, ok, path := s.mosaicPT(asid, u.spec.Arity).WalkToC(vpn, s.path[:0])
		s.walkTraffic(u, path)
		if !ok {
			//lint:ignore nopanic the mosaic page table was updated on fault before any TLB lookup, so a resident VPN always walks
			panic(fmt.Sprintf("memsim: mosaic walk failed for resident VPN %#x", vpn))
		}
		u.mosaic.Insert(tagged, toc)
	}
}

func (s *Simulator) walkTraffic(u *unit, path []uint64) {
	u.walks++
	if u.pwc != nil && len(path) > 1 {
		// The MMU walk cache absorbs upper-level reads; the leaf entry is
		// always fetched from memory (its PTE changes on every remap).
		kept := path[:0]
		for _, pa := range path[:len(path)-1] {
			if u.pwc.lookupInsert(pa) {
				u.pwcHits++
			} else {
				kept = append(kept, pa)
			}
		}
		kept = append(kept, path[len(path)-1])
		path = kept
	}
	u.walkRefs += uint64(len(path))
	s.path = path[:0]
	if u.caches != nil {
		for _, pa := range path {
			u.walkCycles += uint64(u.caches.Access(pa, false))
		}
	}
}

// Run executes a workload through the simulator.
func (s *Simulator) Run(w workloads.Workload) { w.Run(s) }

// RunLimited executes a workload, stopping after maxRefs references.
func (s *Simulator) RunLimited(w workloads.Workload, maxRefs uint64) {
	lim := &trace.Limiter{Next: s, N: maxRefs}
	w.Run(lim)
}

// Results snapshots the per-design-point outcomes.
func (s *Simulator) Results() []Result {
	out := make([]Result, 0, len(s.units))
	for _, u := range s.units {
		r := Result{Spec: u.spec, Walks: u.walks, WalkAccesses: u.walkRefs, WalkCacheHits: u.pwcHits}
		switch {
		case u.vanilla != nil:
			r.TLB = u.vanilla.Stats()
		case u.coalesced != nil:
			r.TLB = u.coalesced.Stats()
			r.CoalescingFactor = u.coalesced.AvgRunLength()
		default:
			r.TLB = u.mosaic.Stats()
		}
		if u.caches != nil {
			r.AMAT = u.caches.AMAT()
			r.TotalCycles = u.caches.TotalCycles()
			r.WalkCycles = u.walkCycles
			for _, l := range u.caches.Levels() {
				r.CacheStats = append(r.CacheStats, l.Stats())
			}
		}
		out = append(out, r)
	}
	return out
}

// WalkOverheadPct is the share of modeled memory time spent in address
// translation: WalkCycles / TotalCycles (caches enabled only).
func (r Result) WalkOverheadPct() float64 {
	if r.TotalCycles == 0 {
		return 0
	}
	return 100 * float64(r.WalkCycles) / float64(r.TotalCycles)
}

// ResultFor returns the result for the spec with the given label.
func (s *Simulator) ResultFor(label string) (Result, bool) {
	for _, r := range s.Results() {
		if r.Spec.Label() == label {
			return r, true
		}
	}
	return Result{}, false
}

var (
	_ trace.Sink      = (*Simulator)(nil)
	_ trace.BatchSink = (*Simulator)(nil)
)
