package memsim

import (
	"testing"

	"mosaic/internal/core"
	"mosaic/internal/tlb"
	"mosaic/internal/workloads"
)

func TestCoalescedSpecLabel(t *testing.T) {
	if got := (TLBSpec{Coalesce: 4}).Label(); got != "CoLT-4" {
		t.Errorf("label = %q", got)
	}
}

func TestCoalesceAndArityExclusive(t *testing.T) {
	_, err := New(Config{Specs: []TLBSpec{{
		Geometry: tlb.Geometry{Entries: 64, Ways: 8}, Arity: 4, Coalesce: 4,
	}}})
	if err == nil {
		t.Fatal("spec with both Arity and Coalesce accepted")
	}
}

func TestCoalescingFindsNoContiguityUnderMosaicPlacement(t *testing.T) {
	// The paper's core comparison: on a hashed (mosaic-constrained)
	// physical layout, a coalescing TLB gets essentially no reach benefit,
	// while a mosaic TLB of the same run length gets the full factor.
	g := tlb.Geometry{Entries: 64, Ways: 8}
	s := newSim(t, Config{
		Frames: 1 << 16,
		Specs: []TLBSpec{
			{Geometry: g},              // vanilla
			{Geometry: g, Coalesce: 4}, // CoLT-4
			{Geometry: g, Arity: 4},    // Mosaic-4
		},
	})
	base := uint64(workloads.DefaultHeapBase)
	for round := 0; round < 10; round++ {
		for p := 0; p < 128; p++ { // 2× vanilla reach
			s.Access(base+uint64(p)*core.PageSize, false)
		}
	}
	rv, _ := s.ResultFor("Vanilla")
	rc, _ := s.ResultFor("CoLT-4")
	rm, _ := s.ResultFor("Mosaic-4")
	if rc.CoalescingFactor > 1.1 {
		t.Errorf("CoLT found contiguity %.2f under hashed placement", rc.CoalescingFactor)
	}
	// Without contiguity CoLT degenerates to vanilla…
	if rc.TLB.Misses < rv.TLB.Misses/2 {
		t.Errorf("CoLT misses %d ≪ vanilla %d despite no contiguity", rc.TLB.Misses, rv.TLB.Misses)
	}
	// …while mosaic still gets its 4×.
	if rm.TLB.Misses*2 > rc.TLB.Misses {
		t.Errorf("Mosaic misses %d not ≪ CoLT misses %d", rm.TLB.Misses, rc.TLB.Misses)
	}
	t.Logf("hashed placement: vanilla=%d CoLT-4=%d (factor %.2f) mosaic-4=%d",
		rv.TLB.Misses, rc.TLB.Misses, rc.CoalescingFactor, rm.TLB.Misses)
}

func TestWalkCacheShortensWalks(t *testing.T) {
	g := tlb.Geometry{Entries: 64, Ways: 8}
	with := newSim(t, Config{Frames: 1 << 16, Specs: []TLBSpec{{Geometry: g}}, EnableWalkCache: true})
	without := newSim(t, Config{Frames: 1 << 16, Specs: []TLBSpec{{Geometry: g}}})
	run := func(s *Simulator) Result {
		w := workloads.NewGUPS(workloads.GUPSConfig{TableWords: 1 << 14, Updates: 1 << 14, Seed: 4})
		s.Run(w)
		return s.Results()[0]
	}
	rw, ro := run(with), run(without)
	if rw.TLB.Misses != ro.TLB.Misses {
		t.Fatalf("walk cache changed TLB misses: %d vs %d", rw.TLB.Misses, ro.TLB.Misses)
	}
	if rw.WalkCacheHits == 0 {
		t.Fatal("walk cache never hit")
	}
	if rw.WalkAccesses+rw.WalkCacheHits != ro.WalkAccesses {
		t.Errorf("walk accounting: with=%d + hits=%d != without=%d",
			rw.WalkAccesses, rw.WalkCacheHits, ro.WalkAccesses)
	}
	// Upper levels are few and hot: the PWC should absorb most of them —
	// walks shrink from 4 reads towards 1–2.
	perWalk := float64(rw.WalkAccesses) / float64(rw.Walks)
	if perWalk > 2.5 {
		t.Errorf("%.2f memory reads per walk with a walk cache; expected ≤ 2.5", perWalk)
	}
	t.Logf("walk cache: %.2f reads/walk (4 without), %d hits", perWalk, rw.WalkCacheHits)
}

func TestWalkCacheLRU(t *testing.T) {
	w := newWalkCache(2)
	if w.lookupInsert(1) {
		t.Fatal("hit in empty cache")
	}
	if !w.lookupInsert(1) {
		t.Fatal("miss after insert")
	}
	w.lookupInsert(2)
	w.lookupInsert(1) // 1 MRU, 2 LRU
	w.lookupInsert(3) // evicts 2
	if w.lookupInsert(2) {
		t.Fatal("LRU entry survived")
	}
	if w.len() != 2 {
		t.Fatalf("len = %d", w.len())
	}
	// 2's reinsertion evicted 1 (LRU after 3's insert promoted 3).
	if !w.lookupInsert(3) {
		t.Fatal("recent entry evicted out of order")
	}
}

func TestCoalescedWorksWithSequentialPlacement(t *testing.T) {
	// Control for the comparison above: CoLT's mechanism itself is sound —
	// with genuinely contiguous PFNs it coalesces. Exercise the TLB
	// directly with a fabricated contiguous layout.
	co := tlb.NewCoalesced(tlb.Geometry{Entries: 64, Ways: 8}, 4)
	for round := 0; round < 10; round++ {
		for vpn := core.VPN(0); vpn < 512; vpn++ { // 8× entry count
			if _, ok := co.Lookup(vpn); !ok {
				group := vpn &^ 3
				var nb []tlb.NeighbourPFN
				for i := core.VPN(0); i < 4; i++ {
					nb = append(nb, tlb.NeighbourPFN{PFN: core.PFN(1000 + group + i), OK: true})
				}
				co.Insert(vpn, core.PFN(1000+vpn), nb)
			}
		}
	}
	if f := co.AvgRunLength(); f < 3.9 {
		t.Errorf("coalescing factor %.2f on fully contiguous layout", f)
	}
	// Reach quadruples: 512 pages fit in 128 coalesced entries… but the
	// TLB has only 64, so it still misses; the factor is what matters and
	// misses should be ~¼ of a vanilla TLB's (which misses every page).
	if co.Stats().Misses > 10*512/4+512 {
		t.Errorf("misses %d too high for 4× coalescing", co.Stats().Misses)
	}
}

func TestWalkOverheadAccounting(t *testing.T) {
	g := tlb.Geometry{Entries: 64, Ways: 8}
	s := newSim(t, Config{
		Frames:       1 << 16,
		Specs:        []TLBSpec{{Geometry: g}, {Geometry: g, Arity: 4}},
		EnableCaches: true,
		MemLatency:   100,
	})
	// A working set far beyond TLB reach, so walks are frequent.
	s.Run(workloads.NewGUPS(workloads.GUPSConfig{TableWords: 1 << 20, Updates: 1 << 16, Seed: 6}))
	rv, rm := s.Results()[0], s.Results()[1]
	for _, r := range []Result{rv, rm} {
		if r.WalkCycles == 0 || r.WalkCycles >= r.TotalCycles {
			t.Errorf("%s: walk cycles %d of %d implausible", r.Spec.Label(), r.WalkCycles, r.TotalCycles)
		}
		if p := r.WalkOverheadPct(); p <= 0 || p >= 100 {
			t.Errorf("%s: overhead %.1f%%", r.Spec.Label(), p)
		}
	}
	// Fewer misses must mean a smaller translation share.
	if rm.WalkOverheadPct() >= rv.WalkOverheadPct() {
		t.Errorf("mosaic translation share %.1f%% not below vanilla %.1f%%",
			rm.WalkOverheadPct(), rv.WalkOverheadPct())
	}
	t.Logf("translation share of memory time: vanilla %.1f%%, mosaic-4 %.1f%% "+
		"(the paper's intro cites 20-30%% at GiB scale, where page tables "+
		"themselves miss in the caches; our MiB-scale tables stay cache-hot)",
		rv.WalkOverheadPct(), rm.WalkOverheadPct())
}
