package memsim

import (
	"testing"

	"mosaic/internal/core"
	"mosaic/internal/tlb"
	"mosaic/internal/workloads"
)

func newSim(t testing.TB, cfg Config) *Simulator {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func specs(entries, ways int, arities ...int) []TLBSpec {
	g := tlb.Geometry{Entries: entries, Ways: ways}
	out := []TLBSpec{{Geometry: g, Arity: 0}}
	for _, a := range arities {
		out = append(out, TLBSpec{Geometry: g, Arity: a})
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty spec list accepted")
	}
	if _, err := New(Config{Specs: []TLBSpec{{Geometry: tlb.Geometry{Entries: 10, Ways: 3}}}}); err == nil {
		t.Error("invalid TLB geometry accepted")
	}
}

func TestSpecLabels(t *testing.T) {
	if got := (TLBSpec{Arity: 0}).Label(); got != "Vanilla" {
		t.Errorf("label = %q", got)
	}
	if got := (TLBSpec{Arity: 16}).Label(); got != "Mosaic-16" {
		t.Errorf("label = %q", got)
	}
}

func TestSequentialScanMosaicWins(t *testing.T) {
	// Scan 2× vanilla reach repeatedly: vanilla misses every page each
	// round; mosaic-4 covers the region with room to spare.
	s := newSim(t, Config{Frames: 1 << 16, Specs: specs(64, 8, 4)})
	for round := 0; round < 8; round++ {
		for p := 0; p < 128; p++ {
			s.Access(uint64(workloads.DefaultHeapBase)+uint64(p)*core.PageSize, false)
		}
	}
	rv, _ := s.ResultFor("Vanilla")
	rm, _ := s.ResultFor("Mosaic-4")
	if rv.TLB.Lookups() != rm.TLB.Lookups() {
		t.Fatalf("units saw different streams: %d vs %d", rv.TLB.Lookups(), rm.TLB.Lookups())
	}
	if rm.TLB.Misses*4 > rv.TLB.Misses {
		t.Errorf("mosaic misses %d not ≪ vanilla %d", rm.TLB.Misses, rv.TLB.Misses)
	}
}

func TestWalksEqualMisses(t *testing.T) {
	s := newSim(t, Config{Frames: 1 << 16, Specs: specs(64, 8, 4, 8)})
	g := workloads.NewGUPS(workloads.GUPSConfig{TableWords: 1 << 14, Updates: 1 << 14, Seed: 1})
	s.Run(g)
	for _, r := range s.Results() {
		if r.Walks != r.TLB.Misses {
			t.Errorf("%s: walks %d != misses %d", r.Spec.Label(), r.Walks, r.TLB.Misses)
		}
		if r.WalkAccesses != 4*r.Walks {
			t.Errorf("%s: walk refs %d != 4×walks %d", r.Spec.Label(), r.WalkAccesses, r.Walks)
		}
		if r.TLB.EntryMisses+r.TLB.SubMisses != r.TLB.Misses {
			t.Errorf("%s: miss breakdown inconsistent: %+v", r.Spec.Label(), r.TLB)
		}
	}
}

func TestGraph500MosaicReduction(t *testing.T) {
	// The paper's headline (Figure 6a): Mosaic-4 substantially reduces
	// Graph500 TLB misses at equal entry count.
	s := newSim(t, Config{Frames: 1 << 18, Specs: specs(256, 8, 4, 16)})
	s.Run(workloads.NewGraph500(workloads.Graph500Config{Scale: 13, Seed: 1}))
	rv, _ := s.ResultFor("Vanilla")
	r4, _ := s.ResultFor("Mosaic-4")
	r16, _ := s.ResultFor("Mosaic-16")
	if r4.TLB.Misses >= rv.TLB.Misses {
		t.Errorf("Mosaic-4 misses %d ≥ vanilla %d", r4.TLB.Misses, rv.TLB.Misses)
	}
	if r16.TLB.Misses >= r4.TLB.Misses {
		t.Errorf("Mosaic-16 misses %d ≥ Mosaic-4 %d (larger arity should help)", r16.TLB.Misses, r4.TLB.Misses)
	}
	red := 100 * (1 - float64(r4.TLB.Misses)/float64(rv.TLB.Misses))
	t.Logf("graph500: vanilla=%d mosaic4=%d (%.1f%% reduction) mosaic16=%d",
		rv.TLB.Misses, r4.TLB.Misses, red, r16.TLB.Misses)
}

func TestAssociativityMonotonicityVanilla(t *testing.T) {
	// More ways never (meaningfully) hurts vanilla on a fixed stream.
	g := tlb.Geometry{Entries: 128, Ways: 1}
	gFull := tlb.Geometry{Entries: 128, Ways: 128}
	s := newSim(t, Config{Frames: 1 << 16, Specs: []TLBSpec{{Geometry: g}, {Geometry: gFull}}})
	s.Run(workloads.NewGUPS(workloads.GUPSConfig{TableWords: 1 << 15, Updates: 1 << 15, Seed: 3}))
	rs := s.Results()
	direct, full := rs[0], rs[1]
	if full.TLB.Misses > direct.TLB.Misses {
		t.Errorf("fully-associative misses %d > direct-mapped %d", full.TLB.Misses, direct.TLB.Misses)
	}
}

func TestEvictionShootdownKeepsCoherence(t *testing.T) {
	// Tiny memory: pages swap in and out; page tables and TLBs must track.
	s := newSim(t, Config{Frames: 128, Specs: specs(64, 8, 4)})
	base := uint64(workloads.DefaultHeapBase)
	for round := 0; round < 5; round++ {
		for p := 0; p < 200; p++ { // footprint 200 pages > 128 frames
			s.Access(base+uint64(p)*core.PageSize, p%3 == 0)
		}
	}
	if s.OS().Device().PageOuts() == 0 {
		t.Fatal("no evictions despite oversubscription")
	}
	if s.Metrics().CounterValue("tlb.shootdown") == 0 {
		t.Fatal("no shootdowns recorded")
	}
	// After the run, every resident page must still walk successfully —
	// exercised implicitly (panics on failure), so just re-touch everything.
	for p := 0; p < 200; p++ {
		s.Access(base+uint64(p)*core.PageSize, false)
	}
}

func TestCachesAccounting(t *testing.T) {
	s := newSim(t, Config{
		Frames:       1 << 16,
		Specs:        specs(64, 8, 4),
		EnableCaches: true,
		MemLatency:   100,
	})
	s.Run(workloads.NewGUPS(workloads.GUPSConfig{TableWords: 1 << 13, Updates: 1 << 13, Seed: 1}))
	for _, r := range s.Results() {
		if r.AMAT <= 0 {
			t.Errorf("%s: AMAT = %f", r.Spec.Label(), r.AMAT)
		}
		if len(r.CacheStats) != 3 {
			t.Errorf("%s: %d cache levels", r.Spec.Label(), len(r.CacheStats))
		}
		l1 := r.CacheStats[0]
		// L1 sees data refs + walk refs.
		want := r.TLB.Lookups() + r.WalkAccesses
		if l1.Hits+l1.Misses != want {
			t.Errorf("%s: L1 lookups %d, want %d", r.Spec.Label(), l1.Hits+l1.Misses, want)
		}
	}
}

func TestRunLimited(t *testing.T) {
	s := newSim(t, Config{Frames: 1 << 16, Specs: specs(64, 8)})
	g := workloads.NewGUPS(workloads.GUPSConfig{TableWords: 1 << 14, Updates: 1 << 20, Seed: 1})
	s.RunLimited(g, 5000)
	r := s.Results()[0]
	if r.TLB.Lookups() != 5000 {
		t.Errorf("limited run saw %d lookups, want 5000", r.TLB.Lookups())
	}
}

func TestResultForUnknown(t *testing.T) {
	s := newSim(t, Config{Frames: 1 << 16, Specs: specs(64, 8)})
	if _, ok := s.ResultFor("Mosaic-64"); ok {
		t.Error("found result for absent spec")
	}
}
