package memsim

// walkCache models an MMU page-walk cache (§5.4 of the paper: "by caching
// portions of the page tables in hardware MMU caches, one can potentially
// eliminate a series of sequential loads"). It is a small fully-associative
// LRU cache over the physical addresses of upper-level page-table entries;
// the leaf PTE is never cached (it changes on every remap, and real PWCs
// cache only non-leaf levels).
type walkCache struct {
	// entries holds PAs in recency order, entries[0] = MRU.
	entries []uint64
	cap     int
}

func newWalkCache(capacity int) *walkCache {
	if capacity <= 0 {
		capacity = 32
	}
	return &walkCache{entries: make([]uint64, 0, capacity), cap: capacity}
}

// lookupInsert probes for pa and reports a hit; on hit the entry is
// promoted, on miss it is inserted (evicting the LRU entry when full).
// A PWC this small is scanned associatively in hardware; linear scan
// matches that.
func (w *walkCache) lookupInsert(pa uint64) bool {
	for i, e := range w.entries {
		if e == pa {
			copy(w.entries[1:i+1], w.entries[:i])
			w.entries[0] = pa
			return true
		}
	}
	if len(w.entries) < w.cap {
		w.entries = append(w.entries, 0)
	}
	copy(w.entries[1:], w.entries[:len(w.entries)-1])
	w.entries[0] = pa
	return false
}

// len reports the number of cached entries.
func (w *walkCache) len() int { return len(w.entries) }
