package memsim

import (
	"strings"
	"testing"

	"mosaic/internal/core"
	"mosaic/internal/invariant"
	"mosaic/internal/tlb"
)

func checkedSimulator(t *testing.T) *Simulator {
	t.Helper()
	s, err := New(Config{
		Frames: 1 << 12,
		Specs: []TLBSpec{
			{Geometry: tlb.Geometry{Entries: 64, Ways: 4}},
			{Geometry: tlb.Geometry{Entries: 64, Ways: 4}, Arity: 4},
		},
		Seed:       5,
		CheckEvery: 64, // exercise the periodic debug checks during the run
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCheckInvariantsDuringRun drives a simulation with CheckEvery enabled
// (every violation would panic mid-run) and confirms the final state audits
// clean, including the TLB↔page-table coherence sweep.
func TestCheckInvariantsDuringRun(t *testing.T) {
	s := checkedSimulator(t)
	for rep := 0; rep < 4; rep++ {
		for p := uint64(0); p < 500; p++ {
			s.Access(p*core.PageSize+16, p%5 == 0)
		}
	}
	var r invariant.Report
	s.CheckInvariants(&r)
	if err := r.Err(); err != nil {
		t.Fatalf("post-run state reported violations: %v", err)
	}
}

// TestCheckInvariantsDetectsStaleTLB plants entries the page tables
// disagree with in both TLB flavours and asserts the coherence audit
// reports them.
func TestCheckInvariantsDetectsStaleTLB(t *testing.T) {
	s := checkedSimulator(t)
	for p := uint64(0); p < 200; p++ {
		s.Access(p*core.PageSize, false)
	}

	t.Run("vanilla-wrong-pfn", func(t *testing.T) {
		vpn := core.VPN(3)
		want, ok := s.vanillaPT(s.cfg.ASID).Get(vpn)
		if !ok {
			t.Fatal("VPN 3 should be mapped")
		}
		s.units[0].vanilla.Insert(taggedVPN(s.cfg.ASID, vpn), want.Add(1))
		var r invariant.Report
		s.CheckInvariants(&r)
		if !hasCoherenceViolation(&r, "Vanilla") {
			t.Fatalf("stale vanilla entry not reported: %v", r.Violations())
		}
		// Repair by reinserting the truth; the state must audit clean again.
		s.units[0].vanilla.Insert(taggedVPN(s.cfg.ASID, vpn), want)
		r = invariant.Report{}
		s.CheckInvariants(&r)
		if err := r.Err(); err != nil {
			t.Fatalf("repaired state still dirty: %v", err)
		}
	})

	t.Run("mosaic-unmapped-subpage", func(t *testing.T) {
		u := s.units[1]
		// A ToC claiming a valid sub-entry for a VPN no page table maps.
		vpn := core.VPN(1 << 20)
		toc := u.mosaic.InvalidToC()
		toc[0] = 0
		u.mosaic.Insert(taggedVPN(s.cfg.ASID, vpn), toc)
		var r invariant.Report
		s.CheckInvariants(&r)
		if !hasCoherenceViolation(&r, "Mosaic-4") {
			t.Fatalf("stale mosaic sub-entry not reported: %v", r.Violations())
		}
	})
}

func hasCoherenceViolation(r *invariant.Report, label string) bool {
	for _, v := range r.Violations() {
		if v.Rule == "memsim.tlb-coherence" && strings.HasPrefix(v.Detail, label) {
			return true
		}
	}
	return false
}
