package vm

import (
	"testing"

	"mosaic/internal/core"
)

func TestSharedRegionCrossASID(t *testing.T) {
	for _, mk := range []func(testing.TB, int) *System{newMosaic, newVanilla} {
		s := mk(t, 64*64)
		t.Run(s.Mode().String(), func(t *testing.T) {
			r, err := s.CreateSharedRegion(8)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.MapShared(1, 0x1000, r); err != nil {
				t.Fatal(err)
			}
			if err := s.MapShared(2, 0x2000, r); err != nil {
				t.Fatal(err)
			}
			// First touch from ASID 1 faults the page in.
			if got := s.Touch(1, 0x1000, true); got != MinorFault {
				t.Fatalf("first shared touch = %v", got)
			}
			// ASID 2 sees the same frame — and hits, since the page is
			// already resident.
			if got := s.Touch(2, 0x2000, false); got != Hit {
				t.Fatalf("second-mapping touch = %v, want hit", got)
			}
			p1, ok1 := s.Translate(1, 0x1000)
			p2, ok2 := s.Translate(2, 0x2000)
			if !ok1 || !ok2 || p1 != p2 {
				t.Fatalf("shared mappings disagree: %d/%v vs %d/%v", p1, ok1, p2, ok2)
			}
			if s.Used() != 1 {
				t.Errorf("one shared page uses %d frames", s.Used())
			}
		})
	}
}

func TestSharedRegionSameCPFNForAllMappings(t *testing.T) {
	// §2.5: hashing (location ID, index) means both mappings see the same
	// ToC entry — the whole point of the extension.
	s := newMosaic(t, 64*64)
	r, _ := s.CreateSharedRegion(4)
	if err := s.MapShared(1, 0x100, r); err != nil {
		t.Fatal(err)
	}
	if err := s.MapShared(2, 0x900, r); err != nil {
		t.Fatal(err)
	}
	s.Touch(1, 0x102, true)
	c1, ok1 := s.CPFNFor(1, 0x102)
	c2, ok2 := s.CPFNFor(2, 0x902)
	if !ok1 || !ok2 || c1 != c2 {
		t.Fatalf("CPFNs differ across mappings: %d/%v vs %d/%v", c1, ok1, c2, ok2)
	}
}

func TestSharedRegionDuplicateMappingSameSpace(t *testing.T) {
	// Duplicate mmaps of the same region within one address space (the
	// other §2.5 use case).
	s := newMosaic(t, 64*64)
	r, _ := s.CreateSharedRegion(4)
	if err := s.MapShared(1, 0x100, r); err != nil {
		t.Fatal(err)
	}
	if err := s.MapShared(1, 0x500, r); err != nil {
		t.Fatal(err)
	}
	s.Touch(1, 0x101, true)
	p1, _ := s.Translate(1, 0x101)
	p2, ok := s.Translate(1, 0x501)
	if !ok || p1 != p2 {
		t.Fatalf("duplicate mapping disagrees: %d vs %d (ok=%v)", p1, p2, ok)
	}
}

func TestSharedMappingConflictsRejected(t *testing.T) {
	s := newMosaic(t, 64*64)
	r, _ := s.CreateSharedRegion(4)
	s.Touch(1, 0x102, false) // private page in the way
	if err := s.MapShared(1, 0x100, r); err == nil {
		t.Error("mapping over a private page succeeded")
	}
	if err := s.MapShared(1, 0x200, r); err != nil {
		t.Fatal(err)
	}
	if err := s.MapShared(1, 0x202, r); err == nil {
		t.Error("overlapping shared mapping succeeded")
	}
}

func TestSharedRegionValidation(t *testing.T) {
	s := newMosaic(t, 64*64)
	if _, err := s.CreateSharedRegion(0); err == nil {
		t.Error("zero-size region accepted")
	}
	if err := s.MapShared(1, 0, nil); err == nil {
		t.Error("nil region accepted")
	}
	other := newMosaic(t, 64*64)
	r, _ := other.CreateSharedRegion(2)
	if err := s.MapShared(1, 0, r); err == nil {
		t.Error("foreign region accepted")
	}
}

func TestSharedRegionUnmapAndTeardown(t *testing.T) {
	s := newMosaic(t, 64*64)
	r, _ := s.CreateSharedRegion(4)
	if err := s.MapShared(1, 0x100, r); err != nil {
		t.Fatal(err)
	}
	if err := s.MapShared(2, 0x200, r); err != nil {
		t.Fatal(err)
	}
	for i := core.VPN(0); i < 4; i++ {
		s.Touch(1, 0x100+i, true)
	}
	if s.Used() != 4 {
		t.Fatalf("Used = %d", s.Used())
	}
	if err := s.UnmapShared(1, 0x100, r); err != nil {
		t.Fatal(err)
	}
	// Region still alive via ASID 2.
	if s.Used() != 4 {
		t.Errorf("Used after first unmap = %d", s.Used())
	}
	if got := s.Touch(2, 0x201, false); got != Hit {
		t.Errorf("surviving mapping touch = %v", got)
	}
	if err := s.UnmapShared(2, 0x200, r); err != nil {
		t.Fatal(err)
	}
	if s.Used() != 0 {
		t.Errorf("Used after final unmap = %d (region pages leaked)", s.Used())
	}
}

func TestSharedPageSwapRoundTrip(t *testing.T) {
	// A shared page evicted under pressure must major-fault back in for
	// whichever mapping touches it first, then hit for the other.
	s := newMosaic(t, 64)
	r, _ := s.CreateSharedRegion(4)
	if err := s.MapShared(1, 0x100, r); err != nil {
		t.Fatal(err)
	}
	if err := s.MapShared(2, 0x200, r); err != nil {
		t.Fatal(err)
	}
	for i := core.VPN(0); i < 4; i++ {
		s.Touch(1, 0x100+i, true)
	}
	// Oversubscribe with private pages to force the shared pages out.
	for v := core.VPN(0); v < 100; v++ {
		s.Touch(3, v, true)
	}
	var victim core.VPN = 0xFFFF
	for i := core.VPN(0); i < 4; i++ {
		if !s.Resident(1, 0x100+i) {
			victim = i
			break
		}
	}
	if victim == 0xFFFF {
		t.Skip("no shared page was evicted under this placement")
	}
	if got := s.Touch(2, 0x200+victim, false); got != MajorFault {
		t.Fatalf("touch of swapped shared page = %v", got)
	}
	if got := s.Touch(1, 0x100+victim, false); got != Hit {
		t.Fatalf("other mapping after page-in = %v", got)
	}
}

func TestSingleMappingUnmapViaUnmap(t *testing.T) {
	// Plain Unmap on a shared VPN releases that whole mapping reference.
	s := newMosaic(t, 64*16)
	r, _ := s.CreateSharedRegion(2)
	if err := s.MapShared(1, 0x10, r); err != nil {
		t.Fatal(err)
	}
	s.Touch(1, 0x10, true)
	if !s.Unmap(1, 0x10) {
		t.Fatal("Unmap of shared VPN failed")
	}
}
