package vm

// Differential testing of the VM against an executable reference model of
// demand-paging semantics. The model knows nothing about iceberg buckets,
// ghosts, watermarks, or LRU lists — only the invariants any correct
// paging implementation must satisfy:
//
//   - a page is in exactly one of three states: unmapped, resident, swapped;
//   - the first touch of an unmapped page is a minor fault, a touch of a
//     swapped page is a major fault, a touch of a resident page is a hit;
//   - resident pages never exceed physical frames;
//   - page-outs and page-ins match the device's counters;
//   - a resident page's translation is stable between evictions
//     (stability: mosaic never migrates resident pages).

import (
	"math/rand"
	"testing"

	"mosaic/internal/alloc"
	"mosaic/internal/core"
)

type modelState uint8

const (
	mUnmapped modelState = iota
	mResident
	mSwapped
)

type pageModel struct {
	state modelState
	pfn   core.PFN
}

func runDifferential(t *testing.T, sys *System, ops int, seed int64, vpnSpace int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	model := map[core.VPN]*pageModel{}
	var expectedOuts uint64

	syncEvictions := func() {
		// Reconcile evictions: any model-resident page that is no longer
		// resident in the system must have been paged out.
		for vpn, pm := range model {
			if pm.state != mResident {
				continue
			}
			if !sys.Resident(1, vpn) {
				if !sys.Device().Contains(ownerOf(vpn)) {
					t.Fatalf("page %#x vanished: not resident, not on swap device", vpn)
				}
				pm.state = mSwapped
				expectedOuts++
			}
		}
	}

	for i := 0; i < ops; i++ {
		vpn := core.VPN(rng.Intn(vpnSpace))
		pm, ok := model[vpn]
		if !ok {
			pm = &pageModel{}
			model[vpn] = pm
		}

		if rng.Intn(20) == 0 && pm.state != mUnmapped {
			// Occasionally unmap.
			if !sys.Unmap(1, vpn) {
				t.Fatalf("op %d: Unmap of mapped page %#x returned false", i, vpn)
			}
			pm.state = mUnmapped
			continue
		}

		write := rng.Intn(3) == 0
		res := sys.Touch(1, vpn, write)
		switch pm.state {
		case mUnmapped:
			if res != MinorFault {
				t.Fatalf("op %d: touch of unmapped %#x = %v, want minor-fault", i, vpn, res)
			}
		case mResident:
			if res != Hit {
				t.Fatalf("op %d: touch of resident %#x = %v, want hit", i, vpn, res)
			}
			// Stability: the translation must not have moved.
			if got, _ := sys.Translate(1, vpn); got != pm.pfn {
				t.Fatalf("op %d: resident page %#x migrated from frame %d to %d", i, vpn, pm.pfn, got)
			}
		case mSwapped:
			if res != MajorFault {
				t.Fatalf("op %d: touch of swapped %#x = %v, want major-fault", i, vpn, res)
			}
		}
		pfn, resident := sys.Translate(1, vpn)
		if !resident {
			t.Fatalf("op %d: page %#x not resident after touch", i, vpn)
		}
		pm.state = mResident
		pm.pfn = pfn

		// The touch may have evicted other pages; reconcile.
		syncEvictions()

		// Global invariants.
		if sys.Used() > sys.NumFrames() {
			t.Fatalf("op %d: %d resident pages exceed %d frames", i, sys.Used(), sys.NumFrames())
		}
		if outs := sys.Device().PageOuts(); outs != expectedOuts {
			t.Fatalf("op %d: device reports %d page-outs, model %d", i, outs, expectedOuts)
		}
	}

	// Final full reconciliation: every model state matches the system.
	resident, swapped := 0, 0
	for vpn, pm := range model {
		sysResident := sys.Resident(1, vpn)
		onDevice := sys.Device().Contains(ownerOf(vpn))
		switch pm.state {
		case mUnmapped:
			if sysResident || onDevice {
				t.Fatalf("unmapped page %#x: resident=%v swapped=%v", vpn, sysResident, onDevice)
			}
		case mResident:
			if !sysResident || onDevice {
				t.Fatalf("resident page %#x: resident=%v swapped=%v", vpn, sysResident, onDevice)
			}
			resident++
		case mSwapped:
			if sysResident || !onDevice {
				t.Fatalf("swapped page %#x: resident=%v swapped=%v", vpn, sysResident, onDevice)
			}
			swapped++
		}
	}
	if resident != sys.Used() {
		t.Fatalf("model counts %d resident, system %d", resident, sys.Used())
	}
	if swapped != sys.Device().Resident() {
		t.Fatalf("model counts %d swapped, device %d", swapped, sys.Device().Resident())
	}
}

func ownerOf(vpn core.VPN) alloc.Owner {
	return alloc.Owner{ASID: 1, VPN: vpn}
}

func TestDifferentialModelMosaic(t *testing.T) {
	// Oversubscribed mosaic memory: plenty of evictions, ghost reclaims,
	// conflicts, and major faults.
	s, err := New(Config{Frames: 512, Mode: ModeMosaic, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	runDifferential(t, s, 40000, 3, 800)
	if s.Metrics().CounterValue("vm.conflict") == 0 {
		t.Error("differential run exercised no associativity conflicts")
	}
}

func TestDifferentialModelMosaicNoHorizon(t *testing.T) {
	s, err := New(Config{Frames: 512, Mode: ModeMosaic, Seed: 4, DisableHorizon: true})
	if err != nil {
		t.Fatal(err)
	}
	runDifferential(t, s, 30000, 4, 800)
}

func TestDifferentialModelVanillaTwoList(t *testing.T) {
	s, err := New(Config{Frames: 512, Mode: ModeVanilla})
	if err != nil {
		t.Fatal(err)
	}
	runDifferential(t, s, 40000, 5, 800)
	if s.Device().PageOuts() == 0 {
		t.Error("differential run exercised no reclaim")
	}
}

func TestDifferentialModelVanillaTrueLRU(t *testing.T) {
	s, err := New(Config{Frames: 512, Mode: ModeVanilla, Policy: PolicyTrueLRU})
	if err != nil {
		t.Fatal(err)
	}
	runDifferential(t, s, 30000, 6, 800)
}

func TestDifferentialModelVanillaClock(t *testing.T) {
	s, err := New(Config{Frames: 512, Mode: ModeVanilla, Policy: PolicyClock})
	if err != nil {
		t.Fatal(err)
	}
	runDifferential(t, s, 30000, 11, 800)
}

func TestDifferentialModelUnderubscribed(t *testing.T) {
	// Fits in memory: no evictions may occur at all.
	s, err := New(Config{Frames: 2048, Mode: ModeMosaic, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	runDifferential(t, s, 20000, 7, 1500)
	if s.Device().TotalIO() != 0 {
		t.Errorf("swap I/O %d despite fitting in memory", s.Device().TotalIO())
	}
}
