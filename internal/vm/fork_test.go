package vm

import (
	"testing"

	"mosaic/internal/core"
)

func TestForkCopyBasics(t *testing.T) {
	s := newMosaic(t, 64*64)
	for v := core.VPN(0); v < 20; v++ {
		s.Touch(1, v, true)
	}
	st, err := s.ForkCopy(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.CopiedPages != 20 || st.ClonedSwapSlots != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if s.Used() != 40 {
		t.Fatalf("Used = %d, want 40 (copies are real frames)", s.Used())
	}
	// Child pages live in child-constrained frames, distinct from the
	// parent's.
	for v := core.VPN(0); v < 20; v++ {
		pp, _ := s.Translate(1, v)
		cp, ok := s.Translate(2, v)
		if !ok {
			t.Fatalf("child page %d not resident", v)
		}
		if pp == cp {
			t.Fatalf("page %d shares a frame across the fork without sharing semantics", v)
		}
	}
	// Post-fork writes are independent (no COW aliasing to go wrong —
	// frames are already distinct; just verify the mappings survive).
	s.Touch(2, 5, true)
	s.Touch(1, 5, true)
	if !s.Resident(1, 5) || !s.Resident(2, 5) {
		t.Fatal("mappings disturbed by post-fork writes")
	}
}

func TestForkCopySwappedPages(t *testing.T) {
	s := newMosaic(t, 64) // tiny: force swap
	for v := core.VPN(0); v < 90; v++ {
		s.Touch(1, v, true)
	}
	outsBefore := s.Device().PageOuts()
	st, err := s.ForkCopy(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.ClonedSwapSlots == 0 {
		t.Fatal("no swap slots cloned despite swapped parent pages")
	}
	// Cloning a slot is not I/O — but the resident-page copies may well
	// have evicted pages (real I/O). Just assert clones exceed the delta
	// in outs by construction: every cloned slot produced zero page-ins.
	if s.Device().PageIns() != 0 {
		t.Fatal("fork performed page-ins")
	}
	_ = outsBefore
	// A cloned swapped page major-faults in the child independently.
	var swapped core.VPN = 0xFFFF
	for v := core.VPN(0); v < 90; v++ {
		if !s.Resident(2, v) {
			swapped = v
			break
		}
	}
	if swapped == 0xFFFF {
		t.Skip("all child pages resident under this placement")
	}
	if got := s.Touch(2, swapped, false); got != MajorFault {
		t.Fatalf("child touch of cloned slot = %v", got)
	}
}

func TestForkCopySharedMappings(t *testing.T) {
	s := newMosaic(t, 64*16)
	r, _ := s.CreateSharedRegion(4)
	if err := s.MapShared(1, 0x100, r); err != nil {
		t.Fatal(err)
	}
	s.Touch(1, 0x101, true)
	st, err := s.ForkCopy(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.SharedMappings != 4 {
		t.Fatalf("shared mappings inherited = %d, want 4", st.SharedMappings)
	}
	// The child's view aliases the same frames (reference semantics).
	p1, _ := s.Translate(1, 0x101)
	p2, ok := s.Translate(2, 0x101)
	if !ok || p1 != p2 {
		t.Fatalf("inherited shared mapping differs: %d vs %d", p1, p2)
	}
	// Region teardown now requires both unmappings.
	if err := s.UnmapShared(1, 0x100, r); err != nil {
		t.Fatal(err)
	}
	if !s.Resident(2, 0x101) {
		t.Fatal("region reclaimed while child still maps it")
	}
	if err := s.UnmapShared(2, 0x100, r); err != nil {
		t.Fatal(err)
	}
	if s.Used() != 0 {
		t.Fatalf("Used = %d after final unmap", s.Used())
	}
}

func TestForkCopyValidation(t *testing.T) {
	s := newMosaic(t, 64*16)
	s.Touch(1, 1, true)
	if _, err := s.ForkCopy(1, 1); err == nil {
		t.Error("fork onto self accepted")
	}
	if _, err := s.ForkCopy(9, 2); err == nil {
		t.Error("fork from empty parent accepted")
	}
	s.Touch(2, 1, true)
	if _, err := s.ForkCopy(1, 2); err == nil {
		t.Error("fork onto non-empty child accepted")
	}
}

func TestForkCopyWorksInVanillaMode(t *testing.T) {
	s := newVanilla(t, 64*16)
	for v := core.VPN(0); v < 10; v++ {
		s.Touch(1, v, true)
	}
	st, err := s.ForkCopy(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.CopiedPages != 10 {
		t.Fatalf("copied = %d", st.CopiedPages)
	}
	if s.Used() != 20 {
		t.Fatalf("Used = %d", s.Used())
	}
}
