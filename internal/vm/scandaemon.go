package vm

import "mosaic/internal/core"

// Access-bit emulation (§3.2). Real x86 hardware maintains only an
// accessed bit per PTE, not a timestamp, so the paper's Linux prototype
// runs a background daemon that scans mosaic memory every second,
// timestamps pages whose accessed bit is set, and clears the bit. Because
// clearing the bit forces a TLB invalidation, the prototype also keeps an
// 8-entry access history per page and, for pages classified hot, clears
// the bit on only 20% of scans (treating the other 80% as accessed).
//
// This file implements that emulation as an opt-in fidelity mode
// (Config.ScanInterval > 0, mosaic mode): Touch sets an in-memory accessed
// bit, and every ScanInterval accesses the daemon scan updates the real
// allocator timestamps the way the prototype would. With ScanInterval == 0
// (the default) timestamps are exact — the design point the paper says a
// real mosaic system would build. Comparing the two quantifies how much of
// Horizon LRU's quality the prototype's emulation gives up
// (AblateTimestamps in the harness).

// scanState carries the daemon's per-frame bookkeeping.
type scanState struct {
	interval uint64
	accessed []bool
	history  []uint8 // sliding window of the last 8 scan outcomes
	scans    uint64
}

func newScanState(frames int, interval uint64) *scanState {
	return &scanState{
		interval: interval,
		accessed: make([]bool, frames),
		history:  make([]uint8, frames),
	}
}

// hot classifies a page from its 8-scan history, as the prototype does:
// a page referenced in at least half of the recent scans is hot.
func (sc *scanState) hot(pfn core.PFN) bool {
	h := sc.history[pfn]
	n := 0
	for ; h != 0; h &= h - 1 {
		n++
	}
	return n >= 4
}

// sampled reports whether a hot page's accessed bit is cleared this scan
// (a deterministic 1-in-5 rotation, the prototype's "20% of pages").
func (sc *scanState) sampled(pfn core.PFN) bool {
	return (uint64(pfn)+sc.scans)%5 == 0
}

// runScan is the daemon pass: timestamp and clear per the prototype's
// policy. Cold pages always have their bit read and cleared; hot pages are
// cleared with 20% probability and otherwise *assumed* accessed.
func (s *System) runScan() {
	sc := s.scan
	sc.scans++
	s.cDaemonScan.Inc()
	for pfn := 0; pfn < s.mem.NumFrames(); pfn++ {
		_, _, _, used := s.mem.FrameInfo(core.PFN(pfn))
		if !used {
			sc.history[pfn] = 0
			sc.accessed[pfn] = false
			continue
		}
		p := core.PFN(pfn)
		referenced := sc.accessed[pfn]
		if sc.hot(p) && !sc.sampled(p) {
			// Unsampled hot page: considered accessed without touching the
			// bit (the prototype's TLB-invalidation-avoidance path). The
			// history records only *measured* bits, so assumed accesses do
			// not reinforce the hot classification.
			referenced = true
		} else {
			sc.accessed[pfn] = false
			sc.history[pfn] = sc.history[pfn]<<1 | bit(referenced)
		}
		if referenced {
			s.mem.Touch(p, s.clock, false)
		}
	}
}

func bit(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
