package vm

import (
	"testing"

	"mosaic/internal/alloc"
	"mosaic/internal/core"
	"mosaic/internal/invariant"
)

func hasRule(r *invariant.Report, rule string) bool {
	for _, v := range r.Violations() {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

// workedSystem builds a mosaic system driven past its capacity, so the
// state under audit includes ghosts, evictions, and swapped-out pages.
func workedSystem(t *testing.T) *System {
	t.Helper()
	s, err := New(Config{Frames: 256, Mode: ModeMosaic, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for vpn := core.VPN(0); vpn < 300; vpn++ {
			s.Touch(1, vpn, vpn%7 == 0)
		}
	}
	if s.Device().Resident() == 0 {
		t.Fatal("workload did not push any page to swap; corruption tests need swap state")
	}
	return s
}

func TestCheckInvariantsClean(t *testing.T) {
	s := workedSystem(t)
	var r invariant.Report
	s.CheckInvariants(&r)
	if err := r.Err(); err != nil {
		t.Fatalf("clean mosaic system reported violations: %v", err)
	}

	v, err := New(Config{Frames: 128, Mode: ModeVanilla})
	if err != nil {
		t.Fatal(err)
	}
	for vpn := core.VPN(0); vpn < 200; vpn++ {
		v.Touch(1, vpn, false)
	}
	r = invariant.Report{}
	v.CheckInvariants(&r)
	if err := r.Err(); err != nil {
		t.Fatalf("clean vanilla system reported violations: %v", err)
	}
}

// residentPages returns the resident private pages of asid in VPN order.
func residentPages(t *testing.T, s *System, asid core.ASID) []*page {
	t.Helper()
	as, ok := s.spaces[asid]
	if !ok {
		t.Fatalf("ASID %d has no space", asid)
	}
	var pages []*page
	for vpn := core.VPN(0); vpn < 300; vpn++ {
		if pg, ok := as.private[vpn]; ok && pg.state == pageResident {
			pages = append(pages, pg)
		}
	}
	if len(pages) < 2 {
		t.Fatal("need at least two resident pages")
	}
	return pages
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	tests := []struct {
		name    string
		corrupt func(t *testing.T, s *System)
		rule    string
	}{
		{"relocated-pages", func(t *testing.T, s *System) {
			// Swap two resident pages' frames without moving the frames'
			// owner records: each page now claims a frame owned by the
			// other — the relocation iceberg stability forbids.
			pages := residentPages(t, s, 1)
			a, b := pages[0], pages[len(pages)-1]
			a.pfn, b.pfn = b.pfn, a.pfn
			a.cpfn, b.cpfn = b.cpfn, a.cpfn
		}, "vm.resident-owner"},
		{"stale-cpfn", func(t *testing.T, s *System) {
			// Point a page's compressed frame number at a different
			// candidate slot: it no longer decodes to the page's frame.
			pg := residentPages(t, s, 1)[0]
			pg.cpfn = (pg.cpfn + 1) % core.CPFN(s.mem.Geometry().Associativity())
		}, "vm.cpfn-decode"},
		{"dropped-mapping", func(t *testing.T, s *System) {
			// Forget a resident mapping while its frame stays allocated.
			as := s.spaces[1]
			for vpn, pg := range as.private {
				if pg.state == pageResident {
					delete(as.private, vpn)
					return
				}
			}
			t.Fatal("no resident page to drop")
		}, "vm.leaked-frame"},
		{"phantom-swap-slot", func(t *testing.T, s *System) {
			// A device slot no page is in swapped state for.
			s.dev.PageOut(alloc.Owner{ASID: 3, VPN: 0x123456})
		}, "vm.swap-count"},
		{"swapped-without-slot", func(t *testing.T, s *System) {
			// A page marked swapped whose device slot vanished.
			as := s.spaces[1]
			for vpn, pg := range as.private {
				if pg.state == pageSwapped {
					s.dev.Drop(alloc.Owner{ASID: 1, VPN: vpn})
					return
				}
			}
			t.Fatal("no swapped page to orphan")
		}, "vm.swap-slot"},
		{"horizon-beyond-clock", func(t *testing.T, s *System) {
			s.hlru.NoteEviction(s.clock + 100)
		}, "vm.horizon-clock"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s := workedSystem(t)
			tc.corrupt(t, s)
			var r invariant.Report
			s.CheckInvariants(&r)
			if r.OK() {
				t.Fatalf("corruption %q went undetected", tc.name)
			}
			if !hasRule(&r, tc.rule) {
				t.Fatalf("corruption %q reported %v, want rule %s", tc.name, r.Violations(), tc.rule)
			}
		})
	}
}
