package vm

import (
	"math/rand"
	"testing"

	"mosaic/internal/core"
)

func newMosaic(t testing.TB, frames int) *System {
	t.Helper()
	s, err := New(Config{Frames: frames, Mode: ModeMosaic, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newVanilla(t testing.TB, frames int) *System {
	t.Helper()
	s, err := New(Config{Frames: frames, Mode: ModeVanilla})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Frames: 0}); err == nil {
		t.Error("zero frames accepted")
	}
	if _, err := New(Config{Frames: 1024, LowWatermark: 1.5}); err == nil {
		t.Error("watermark > 1 accepted")
	}
	if _, err := New(Config{Frames: 1024, LowWatermark: 0.5, HighWatermark: 0.1}); err == nil {
		t.Error("high < low watermark accepted")
	}
	if _, err := New(Config{Frames: 1024, Mode: Mode(9)}); err == nil {
		t.Error("bogus mode accepted")
	}
}

func TestDemandPagingBasics(t *testing.T) {
	for _, s := range []*System{newMosaic(t, 64*64), newVanilla(t, 64*64)} {
		t.Run(s.Mode().String(), func(t *testing.T) {
			if got := s.Touch(1, 100, false); got != MinorFault {
				t.Errorf("first touch = %v, want minor-fault", got)
			}
			if got := s.Touch(1, 100, true); got != Hit {
				t.Errorf("second touch = %v, want hit", got)
			}
			if s.Used() != 1 {
				t.Errorf("Used = %d", s.Used())
			}
			if !s.Resident(1, 100) {
				t.Error("page not resident after touch")
			}
			if s.Resident(1, 101) || s.Resident(2, 100) {
				t.Error("untouched pages report resident")
			}
			if _, ok := s.Translate(1, 100); !ok {
				t.Error("Translate failed for resident page")
			}
			if s.Metrics().CounterValue("vm.access") != 2 || s.Metrics().CounterValue("vm.fault.minor") != 1 {
				t.Errorf("access=%d minor-faults=%d", s.Metrics().CounterValue("vm.access"), s.Metrics().CounterValue("vm.fault.minor"))
			}
			if s.Device().TotalIO() != 0 {
				t.Error("demand-zero faulting performed swap I/O")
			}
		})
	}
}

func TestMosaicCPFNExposed(t *testing.T) {
	s := newMosaic(t, 64*64)
	s.Touch(1, 7, false)
	cpfn, ok := s.CPFNFor(1, 7)
	if !ok {
		t.Fatal("CPFNFor failed for resident page")
	}
	if !core.DefaultGeometry.ValidCPFN(cpfn) {
		t.Fatalf("CPFN %d invalid for geometry", cpfn)
	}
	v := newVanilla(t, 64*64)
	v.Touch(1, 7, false)
	if _, ok := v.CPFNFor(1, 7); ok {
		t.Error("vanilla system produced a CPFN")
	}
}

func TestMosaicFirstConflictNear98Percent(t *testing.T) {
	s := newMosaic(t, 1<<14)
	vpn := core.VPN(0)
	for {
		s.Touch(1, vpn, true)
		vpn++
		if _, saw := s.FirstConflictUtilization(); saw {
			break
		}
		if int(vpn) > s.NumFrames()+1000 {
			t.Fatal("no conflict even far past capacity")
		}
	}
	util, _ := s.FirstConflictUtilization()
	if util < 0.95 || util > 1.0 {
		t.Errorf("first conflict at %.4f, want ≈0.98", util)
	}
	t.Logf("first conflict at utilization %.4f (paper: ≈0.9803)", util)
}

func TestVanillaSwapsNearWatermark(t *testing.T) {
	s := newVanilla(t, 1<<14)
	vpn := core.VPN(0)
	for s.Device().PageOuts() == 0 {
		s.Touch(1, vpn, true)
		vpn++
		if int(vpn) > s.NumFrames()*2 {
			t.Fatal("vanilla system never swapped")
		}
	}
	util := s.Utilization()
	// Reclaim triggers when free < 0.8%, i.e. utilization ≈ 99.2%.
	if util < 0.985 || util > 1.0 {
		t.Errorf("first swap at utilization %.4f, want ≈0.992", util)
	}
	t.Logf("vanilla first swap at utilization %.4f (paper: ≈0.992)", util)
}

func TestMajorFaultRoundTrip(t *testing.T) {
	s := newMosaic(t, 64) // one bucket: tiny memory forces eviction fast
	// Fill past capacity so some page gets evicted.
	for v := core.VPN(0); v < 80; v++ {
		s.Touch(1, v, true)
	}
	if s.Device().PageOuts() == 0 {
		t.Fatal("no evictions in oversubscribed memory")
	}
	// Find a swapped-out page and touch it.
	var swapped core.VPN = 0xFFFF
	for v := core.VPN(0); v < 80; v++ {
		if !s.Resident(1, v) {
			swapped = v
			break
		}
	}
	if swapped == 0xFFFF {
		t.Fatal("no non-resident page found")
	}
	ins := s.Device().PageIns()
	if got := s.Touch(1, swapped, false); got != MajorFault {
		t.Fatalf("touch of swapped page = %v, want major-fault", got)
	}
	if s.Device().PageIns() != ins+1 {
		t.Error("page-in not counted")
	}
	if !s.Resident(1, swapped) {
		t.Error("page not resident after major fault")
	}
}

func TestGhostRevivalIsFree(t *testing.T) {
	s := newMosaic(t, 1<<12)
	// Fill to just below conflict, then push past it to raise the horizon.
	var vpn core.VPN
	for {
		s.Touch(1, vpn, true)
		vpn++
		if s.Metrics().CounterValue("vm.conflict") >= 3 {
			break
		}
	}
	if s.Horizon() == 0 {
		t.Fatal("horizon never rose")
	}
	if s.GhostCount() == 0 {
		t.Fatal("no ghosts after conflicts")
	}
	// Find a resident ghost: resident but older than the horizon. Touch it:
	// must be a Hit (free revival) with no new I/O.
	io := s.Device().TotalIO()
	revived := false
	for v := core.VPN(0); v < vpn; v++ {
		pfn, ok := s.Translate(1, v)
		if !ok {
			continue
		}
		_ = pfn
		if got := s.Touch(1, v, false); got != Hit {
			t.Fatalf("touch of resident page = %v", got)
		}
		revived = true
		break
	}
	if !revived {
		t.Fatal("no resident page to revive")
	}
	if s.Device().TotalIO() != io {
		t.Error("reviving a resident page performed swap I/O")
	}
}

func TestEvictionAccountingConsistent(t *testing.T) {
	for _, s := range []*System{newMosaic(t, 1<<12), newVanilla(t, 1<<12)} {
		t.Run(s.Mode().String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(9))
			for i := 0; i < 30000; i++ {
				s.Touch(1, core.VPN(rng.Intn(6000)), rng.Intn(2) == 0)
			}
			if got, want := s.Metrics().CounterValue("vm.evict"), s.Device().PageOuts(); got != want {
				t.Errorf("evictions=%d, page-outs=%d", got, want)
			}
			if s.Used() > s.NumFrames() {
				t.Errorf("Used %d exceeds frames %d", s.Used(), s.NumFrames())
			}
			// Every VPN is either resident, swapped, or unmapped; resident
			// count must equal allocator's Used.
			resident := 0
			for v := core.VPN(0); v < 6000; v++ {
				if s.Resident(1, v) {
					resident++
				}
			}
			if resident != s.Used() {
				t.Errorf("resident pages %d != allocator Used %d", resident, s.Used())
			}
		})
	}
}

func TestOversubscriptionMosaicVsVanilla(t *testing.T) {
	// Sanity for the Table 4 harness: with a uniformly random working set
	// 25% larger than memory, both systems swap, and mosaic's I/O count is
	// within a sane band of vanilla's.
	const frames = 1 << 12
	const footprint = frames + frames/4
	run := func(s *System) uint64 {
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 200000; i++ {
			s.Touch(1, core.VPN(rng.Intn(footprint)), false)
		}
		return s.Device().TotalIO()
	}
	mosaicIO := run(newMosaic(t, frames))
	vanillaIO := run(newVanilla(t, frames))
	if mosaicIO == 0 || vanillaIO == 0 {
		t.Fatalf("expected swapping: mosaic=%d vanilla=%d", mosaicIO, vanillaIO)
	}
	ratio := float64(mosaicIO) / float64(vanillaIO)
	if ratio > 2.0 || ratio < 0.2 {
		t.Errorf("mosaic/vanilla I/O ratio %.2f wildly off (mosaic=%d vanilla=%d)",
			ratio, mosaicIO, vanillaIO)
	}
	t.Logf("mosaic=%d vanilla=%d ratio=%.3f", mosaicIO, vanillaIO, ratio)
}

func TestUnmapPrivate(t *testing.T) {
	s := newMosaic(t, 64*16)
	s.Touch(1, 5, true)
	if !s.Unmap(1, 5) {
		t.Fatal("Unmap of mapped page returned false")
	}
	if s.Unmap(1, 5) {
		t.Fatal("second Unmap returned true")
	}
	if s.Used() != 0 {
		t.Errorf("Used after unmap = %d", s.Used())
	}
	if s.Resident(1, 5) {
		t.Error("page resident after unmap")
	}
	// Unmap of a swapped page drops the swap slot.
	tiny := newMosaic(t, 64)
	for v := core.VPN(0); v < 80; v++ {
		tiny.Touch(1, v, true)
	}
	var swapped core.VPN = 0xFFFF
	for v := core.VPN(0); v < 80; v++ {
		if !tiny.Resident(1, v) {
			swapped = v
			break
		}
	}
	if swapped == 0xFFFF {
		t.Fatal("no swapped page")
	}
	if !tiny.Unmap(1, swapped) {
		t.Fatal("Unmap of swapped page failed")
	}
	if got := tiny.Touch(1, swapped, false); got != MinorFault {
		t.Errorf("touch after unmap = %v, want fresh minor fault", got)
	}
}

func TestMappedPages(t *testing.T) {
	s := newVanilla(t, 64*16)
	for v := core.VPN(0); v < 10; v++ {
		s.Touch(3, v, false)
	}
	if got := s.MappedPages(3); got != 10 {
		t.Errorf("MappedPages = %d", got)
	}
	if got := s.MappedPages(99); got != 0 {
		t.Errorf("MappedPages of unknown ASID = %d", got)
	}
}

func TestASIDIsolation(t *testing.T) {
	s := newMosaic(t, 64*64)
	s.Touch(1, 100, true)
	s.Touch(2, 100, true)
	p1, _ := s.Translate(1, 100)
	p2, _ := s.Translate(2, 100)
	if p1 == p2 {
		t.Error("same VPN in different ASIDs shares a frame without sharing")
	}
	if s.Used() != 2 {
		t.Errorf("Used = %d", s.Used())
	}
}

func TestReservedASIDPanics(t *testing.T) {
	s := newMosaic(t, 64*16)
	defer func() {
		if recover() == nil {
			t.Fatal("reserved ASID should panic")
		}
	}()
	s.Touch(0xFFFFFFFF, 1, false)
}
