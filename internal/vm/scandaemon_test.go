package vm

import (
	"math/rand"
	"testing"

	"mosaic/internal/core"
)

func TestScanModeValidation(t *testing.T) {
	if _, err := New(Config{Frames: 512, Mode: ModeVanilla, ScanInterval: 100}); err == nil {
		t.Error("ScanInterval accepted in vanilla mode")
	}
}

func TestScanModeRunsDaemon(t *testing.T) {
	s, err := New(Config{Frames: 512, Mode: ModeMosaic, Seed: 1, ScanInterval: 256})
	if err != nil {
		t.Fatal(err)
	}
	for v := core.VPN(0); v < 400; v++ {
		s.Touch(1, v, true)
	}
	if s.Metrics().CounterValue("vm.scan.daemon") == 0 {
		t.Fatal("daemon never ran")
	}
}

func TestScanModeCoarsensRecency(t *testing.T) {
	// With exact timestamps, touching a page just before a conflict makes
	// it the youngest candidate. With scan emulation, a touch between
	// scans is invisible until the next scan — the fidelity loss the
	// prototype accepts.
	exact, err := New(Config{Frames: 128, Mode: ModeMosaic, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	emu, err := New(Config{Frames: 128, Mode: ModeMosaic, Seed: 2, ScanInterval: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*System{exact, emu} {
		for v := core.VPN(0); v < 100; v++ {
			s.Touch(1, v, true)
		}
		// Re-touch everything (recency refresh).
		for v := core.VPN(0); v < 100; v++ {
			s.Touch(1, v, false)
		}
	}
	// Exact mode: live pages carry fresh timestamps. Emulated mode with no
	// scan yet: timestamps still reflect placement time.
	_, exactLast, _, _ := exactFrame(exact, 1, 0)
	_, emuLast, _, _ := exactFrame(emu, 1, 0)
	if exactLast <= emuLast {
		t.Errorf("exact timestamp %d not fresher than emulated %d", exactLast, emuLast)
	}
}

func exactFrame(s *System, asid core.ASID, vpn core.VPN) (core.PFN, uint64, bool, bool) {
	pfn, ok := s.Translate(asid, vpn)
	if !ok {
		return 0, 0, false, false
	}
	_, last, dirty, used := s.mem.FrameInfo(pfn)
	return pfn, last, dirty, used
}

func TestScanModeStillCorrect(t *testing.T) {
	// The differential model must hold under access-bit emulation too:
	// the emulation changes *which* pages get evicted, never the paging
	// semantics.
	s, err := New(Config{Frames: 512, Mode: ModeMosaic, Seed: 8, ScanInterval: 1000})
	if err != nil {
		t.Fatal(err)
	}
	runDifferential(t, s, 30000, 8, 800)
	if s.Metrics().CounterValue("vm.scan.daemon") == 0 {
		t.Error("no scans during differential run")
	}
}

func TestScanModeDirtyTracking(t *testing.T) {
	s, err := New(Config{Frames: 512, Mode: ModeMosaic, Seed: 9, ScanInterval: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	s.Touch(1, 5, false)
	s.Touch(1, 5, true) // write via emulated path
	_, _, dirty, _ := exactFrame(s, 1, 5)
	if !dirty {
		t.Error("write through emulation did not dirty the frame")
	}
}

func TestScanModeHotPageClassification(t *testing.T) {
	// Pages touched every scan become hot; a page never touched stays cold.
	s, err := New(Config{Frames: 512, Mode: ModeMosaic, Seed: 10, ScanInterval: 64})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	// Hot page 0: touched constantly. Cold pages: touched once.
	for v := core.VPN(1); v < 50; v++ {
		s.Touch(1, v, false)
	}
	for i := 0; i < 64*12; i++ {
		s.Touch(1, 0, false)
		if rng.Intn(4) == 0 {
			s.Touch(1, core.VPN(1+rng.Intn(49)), false)
		}
	}
	pfn, _ := s.Translate(1, 0)
	if !s.scan.hot(pfn) {
		t.Error("constantly-touched page not classified hot")
	}
	// A page that exists but is never touched after placement: cold.
	s.Touch(1, 100, false)
	for i := 0; i < 64*10; i++ {
		s.Touch(1, 0, false)
	}
	coldPFN, _ := s.Translate(1, 100)
	if s.scan.hot(coldPFN) {
		t.Error("untouched page classified hot")
	}
}
