package vm

import (
	"mosaic/internal/alloc"
	"mosaic/internal/core"
	"mosaic/internal/invariant"
)

// CheckInvariants performs a deep consistency check of the whole VM state,
// recording any violation on r. It first delegates to the allocator's own
// checker (bitmap/free-list integrity, owner hashing), then verifies the
// OS-level coherence the allocator cannot see:
//
//   - every resident page's frame is owned by exactly that (ASID, VPN) —
//     and, in mosaic mode, its stored CPFN decodes back to its PFN and the
//     allocator really knows the owner;
//   - every occupied frame belongs to some resident page (no leaked
//     frames), so resident-page count equals allocator Used();
//   - every swapped-out page has a swap-device slot and vice versa;
//   - the Horizon LRU's ghost threshold never exceeds the access clock
//     (a page cannot have been evicted at a time later than "now").
//
// It runs in O(frames + mapped pages); call it from tests, or periodically
// from memsim via Config.CheckEvery.
func (s *System) CheckInvariants(r *invariant.Report) {
	if s.mem != nil {
		s.mem.CheckInvariants(r)
	}
	if s.umem != nil {
		s.umem.CheckInvariants(r)
	}
	if s.hlru != nil {
		r.Checkf(s.hlru.Horizon() <= s.clock, "vm.horizon-clock",
			"horizon %d exceeds access clock %d", s.hlru.Horizon(), s.clock)
	}

	resident := make(map[alloc.Owner]core.PFN)
	swapped := 0
	checkPage := func(owner alloc.Owner, pg *page) {
		switch pg.state {
		case pageResident:
			resident[owner] = pg.pfn
			fOwner, _, _, used := s.frameInfo(pg.pfn)
			if !r.Checkf(used, "vm.resident-frame",
				"page %+v resident at frame %d, but the frame is free", owner, pg.pfn) {
				return
			}
			r.Checkf(fOwner == owner, "vm.resident-owner",
				"page %+v resident at frame %d, owned by %+v", owner, pg.pfn, fOwner)
			if s.mode == ModeMosaic {
				if !r.Checkf(s.mem.Geometry().ValidCPFN(pg.cpfn), "vm.cpfn-valid",
					"page %+v stores invalid CPFN %d", owner, pg.cpfn) {
					return
				}
				dec := s.mem.DecodeCPFN(owner.ASID, owner.VPN, pg.cpfn)
				r.Checkf(dec == pg.pfn, "vm.cpfn-decode",
					"page %+v CPFN %d decodes to frame %d, page records %d", owner, pg.cpfn, dec, pg.pfn)
			}
		case pageSwapped:
			swapped++
			r.Checkf(s.dev.Contains(owner), "vm.swap-slot",
				"page %+v marked swapped, but the device has no slot for it", owner)
		}
	}
	for asid, as := range s.spaces {
		for vpn, pg := range as.private {
			checkPage(alloc.Owner{ASID: asid, VPN: vpn}, pg)
		}
	}
	for _, region := range s.regions {
		for i := range region.pages {
			checkPage(alloc.Owner{ASID: sharedASID, VPN: sharedVPN(region.id, i)}, &region.pages[i])
		}
	}

	r.Checkf(len(resident) == s.Used(), "vm.resident-count",
		"%d resident pages, allocator reports %d frames used", len(resident), s.Used())
	for idx := 0; idx < s.NumFrames(); idx++ {
		pfn := core.PFN(idx)
		owner, _, _, used := s.frameInfo(pfn)
		if !used {
			continue
		}
		if back, ok := resident[owner]; !ok {
			r.Violatef("vm.leaked-frame",
				"frame %d owned by %+v, but no resident page maps it", idx, owner)
		} else {
			r.Checkf(back == pfn, "vm.frame-backlink",
				"frame %d owned by %+v, whose page records frame %d", idx, owner, back)
		}
	}
	r.Checkf(swapped == s.dev.Resident(), "vm.swap-count",
		"%d pages in swapped state, device holds %d", swapped, s.dev.Resident())
}

// frameInfo dispatches FrameInfo to whichever allocator the mode uses.
func (s *System) frameInfo(pfn core.PFN) (alloc.Owner, uint64, bool, bool) {
	if s.mode == ModeMosaic {
		return s.mem.FrameInfo(pfn)
	}
	return s.umem.FrameInfo(pfn)
}
