package vm

import (
	"fmt"
	"sort"

	"mosaic/internal/alloc"
	"mosaic/internal/core"
)

// fork() and mosaic pages (§2.5, §3.2). Mosaic placement is keyed by
// (ASID, VPN), so a child process cannot simply reference its parent's
// frames: the parent's frames are, in general, not in the child's candidate
// sets. The paper's prototype therefore does not support inheriting mosaic
// pages via fork() at all. This file implements the semantics a mosaic
// kernel could offer today — eager copy, where every inherited page is
// re-placed under the child's own constraints — and makes the cost explicit
// (the returned copy count). Copy-on-write inheritance would require the
// location-ID mechanism from construction time; see SharedRegion for that
// path.

// ForkStats reports what a ForkCopy did.
type ForkStats struct {
	// CopiedPages is the number of resident pages physically copied into
	// child-constrained frames.
	CopiedPages int
	// ClonedSwapSlots is the number of swapped-out pages whose swap slots
	// were duplicated for the child (no I/O: the device copy is logical).
	ClonedSwapSlots int
	// SharedMappings is the number of location-ID region mappings the
	// child inherited by reference (no copying needed — the §2.5 design).
	SharedMappings int
}

// ForkCopy clones parent's address space into child (which must be empty):
// resident private pages are eagerly copied into frames drawn from the
// child's own candidate sets, swapped pages get cloned swap slots, and
// shared-region mappings are inherited by reference. The copies may evict
// other pages under memory pressure, exactly like any other allocation.
func (s *System) ForkCopy(parent, child core.ASID) (ForkStats, error) {
	if parent == child {
		return ForkStats{}, fmt.Errorf("vm: fork onto the same ASID %d", parent)
	}
	pas, ok := s.spaces[parent]
	if !ok {
		return ForkStats{}, fmt.Errorf("vm: parent ASID %d has no address space", parent)
	}
	cas := s.Space(child)
	if len(cas.private) != 0 || len(cas.shared) != 0 {
		return ForkStats{}, fmt.Errorf("vm: child ASID %d is not empty", child)
	}

	var st ForkStats
	// Shared mappings: inherit by reference (each inherited mapping holds
	// its own region reference).
	regionRefs := map[*SharedRegion]int{}
	for vpn, ref := range pas.shared {
		cas.shared[vpn] = ref
		regionRefs[ref.region]++
		st.SharedMappings++
	}
	for region := range regionRefs {
		region.maps++
	}

	// Private pages: eager copy or swap-slot clone, in VPN order so fork
	// results are deterministic even when the copies trigger evictions.
	vpns := make([]core.VPN, 0, len(pas.private))
	for vpn := range pas.private {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	for _, vpn := range vpns {
		ppg := pas.private[vpn]
		switch ppg.state {
		case pageResident:
			s.clock++
			cpg := &page{}
			cas.private[vpn] = cpg
			s.fillPage(child, vpn, cpg, true) // the copy dirties the new frame
			s.cForkCopy.Inc()
			st.CopiedPages++
		case pageSwapped:
			s.dev.Clone(
				alloc.Owner{ASID: parent, VPN: vpn},
				alloc.Owner{ASID: child, VPN: vpn},
			)
			cas.private[vpn] = &page{state: pageSwapped}
			st.ClonedSwapSlots++
		}
	}
	return st, nil
}
