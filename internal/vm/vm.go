// Package vm implements the operating-system layer of the mosaic prototype
// (§3.2 of the paper): per-ASID address spaces, demand paging, and the
// interplay between the page allocator, the eviction policy, and the swap
// device.
//
// A System runs in one of two modes:
//
//   - ModeMosaic: allocation is iceberg-constrained (internal/alloc.Memory)
//     and eviction uses Horizon LRU (§2.4). Pages older than the horizon are
//     ghosts: resident and revivable for free, but reclaimable by the
//     allocator. Real evictions — and hence swap I/Os — happen only when a
//     ghost's frame is claimed or an associativity conflict forces a victim.
//
//   - ModeVanilla: allocation is fully associative and reclaim approximates
//     Linux: a two-list active/inactive LRU plus zone watermarks (reclaim
//     begins when free memory falls below LowWatermark, and proceeds until
//     HighWatermark is free), matching the paper's observation that stock
//     Linux starts swapping at ≈99.2% utilization.
//
// Unlike the paper's Linux prototype — which emulates access timestamps
// with a scan daemon because x86 only maintains access bits — this layer
// keeps exact per-frame timestamps from a logical access clock, the design
// point the paper says a real mosaic system would implement.
package vm

import (
	"errors"
	"fmt"

	"mosaic/internal/alloc"
	"mosaic/internal/core"
	"mosaic/internal/obs"
	"mosaic/internal/swap"
	"mosaic/internal/xxhash"
)

// Mode selects the allocation/eviction regime.
type Mode int

const (
	// ModeMosaic uses iceberg-constrained allocation with Horizon LRU.
	ModeMosaic Mode = iota
	// ModeVanilla uses fully-associative allocation with a Linux-like
	// two-list LRU and zone watermarks.
	ModeVanilla
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeMosaic:
		return "mosaic"
	case ModeVanilla:
		return "vanilla"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// BaselinePolicy selects the vanilla-mode eviction policy.
type BaselinePolicy int

const (
	// PolicyTwoList approximates Linux's active/inactive reclaim (default).
	PolicyTwoList BaselinePolicy = iota
	// PolicyTrueLRU is exact global LRU (for ablation).
	PolicyTrueLRU
	// PolicyClock is classic second-chance CLOCK (for ablation).
	PolicyClock
)

// sharedASID is the reserved namespace for pages placed via location IDs
// (§2.5); user address spaces must not use it.
const sharedASID core.ASID = 0xFFFFFFFF

// Config parameterizes a System.
type Config struct {
	// Frames is the number of physical frames. Required.
	Frames int
	// Mode selects mosaic or vanilla behaviour.
	Mode Mode
	// Geometry is the iceberg geometry (mosaic mode). Defaults to
	// core.DefaultGeometry.
	Geometry core.Geometry
	// Hash is the placement hash (mosaic mode). Defaults to xxHash with
	// Seed, mirroring the paper's Linux prototype.
	Hash core.PlacementHash
	// Seed seeds the default placement hash.
	Seed uint64
	// Policy selects the vanilla eviction policy.
	Policy BaselinePolicy
	// LowWatermark is the free-frame fraction below which vanilla reclaim
	// kicks in. Defaults to 0.008 (Linux begins swapping at ≈99.2%
	// utilization, per §4.2).
	LowWatermark float64
	// HighWatermark is the free-frame fraction reclaim restores. Defaults
	// to 1.25 × LowWatermark.
	HighWatermark float64
	// DisableHorizon turns off the Horizon LRU ghost mechanism (mosaic
	// mode), leaving the naive scheme §2.4 argues against: evict the LRU
	// page of the conflicting candidates, with no ghosts. For the eviction
	// ablation.
	DisableHorizon bool
	// ScanInterval, when nonzero, replaces exact access timestamps with
	// the paper's prototype emulation (§3.2): Touch only sets an accessed
	// bit, and a daemon scan every ScanInterval accesses converts bits to
	// timestamps (with the prototype's hot-page 20% sampling). Mosaic mode
	// only. Zero (default) keeps exact timestamps.
	ScanInterval uint64
	// Obs supplies the observability bundle (metrics registry and event
	// log). When nil, the system creates a private registry so counters
	// always work; events are simply not recorded.
	Obs *obs.Observer
}

func (c *Config) applyDefaults() error {
	if c.Frames <= 0 {
		return fmt.Errorf("vm: config needs a positive frame count, got %d", c.Frames)
	}
	if c.Geometry == (core.Geometry{}) {
		c.Geometry = core.DefaultGeometry
	}
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if c.Hash == nil {
		c.Hash = xxhash.NewPlacement(c.Seed)
	}
	if c.LowWatermark == 0 {
		c.LowWatermark = 0.008
	}
	if c.LowWatermark < 0 || c.LowWatermark >= 1 {
		return fmt.Errorf("vm: low watermark %v out of range (0,1)", c.LowWatermark)
	}
	if c.HighWatermark == 0 {
		c.HighWatermark = 1.25 * c.LowWatermark
	}
	if c.HighWatermark < c.LowWatermark || c.HighWatermark >= 1 {
		return fmt.Errorf("vm: high watermark %v must be in [low, 1)", c.HighWatermark)
	}
	return nil
}

// AccessResult classifies what a Touch had to do.
type AccessResult uint8

const (
	// Hit: the page was resident (possibly a ghost, revived for free).
	Hit AccessResult = iota
	// MinorFault: first touch of an unmapped page (demand-zero fill).
	MinorFault
	// MajorFault: the page was on the swap device and was paged in.
	MajorFault
)

// String implements fmt.Stringer.
func (r AccessResult) String() string {
	switch r {
	case Hit:
		return "hit"
	case MinorFault:
		return "minor-fault"
	case MajorFault:
		return "major-fault"
	default:
		return fmt.Sprintf("AccessResult(%d)", int(r))
	}
}

type pageState uint8

const (
	// pageNone: mapped but never faulted in (shared-region pages start
	// here; private pages are created and filled in the same fault).
	pageNone pageState = iota
	pageResident
	pageSwapped
)

type page struct {
	state pageState
	pfn   core.PFN
	cpfn  core.CPFN
}

type sharedRef struct {
	region *SharedRegion
	index  int
}

// AddressSpace is one process's view of virtual memory.
type AddressSpace struct {
	asid    core.ASID
	private map[core.VPN]*page
	shared  map[core.VPN]sharedRef
}

// SharedRegion is a run of pages shared through the location-ID mechanism
// of §2.5: placement hashes (locationID, index) rather than (ASID, VPN), so
// the same frames back every mapping of the region.
type SharedRegion struct {
	id    uint32
	pages []page
	maps  int
}

// ID is the region's location ID.
func (r *SharedRegion) ID() uint32 { return r.id }

// Len is the region's length in pages.
func (r *SharedRegion) Len() int { return len(r.pages) }

// System is a simulated virtual-memory subsystem. It is not safe for
// concurrent use.
type System struct {
	cfg  Config
	mode Mode

	mem  *alloc.Memory        // mosaic mode
	umem *alloc.Unconstrained // vanilla mode

	hlru   *swap.HorizonLRU
	policy swap.Policy
	dev    *swap.Device

	spaces  map[core.ASID]*AddressSpace
	regions map[uint32]*SharedRegion
	nextRID uint32

	clock uint64

	// Observability: a registry of typed instruments plus direct handles
	// for the hot-path counters (one integer add per event, no lookups),
	// and an optional structured event log for rare transitions.
	metrics *obs.Registry
	events  *obs.EventLog

	cAccess        *obs.Counter // vm.access
	cMinorFault    *obs.Counter // vm.fault.minor
	cMajorFault    *obs.Counter // vm.fault.major
	cConflict      *obs.Counter // vm.conflict
	cGhostReclaim  *obs.Counter // vm.ghost.reclaim
	cEvict         *obs.Counter // vm.evict
	cConflictEvict *obs.Counter // vm.evict.conflict
	cReclaim       *obs.Counter // vm.reclaim
	cDaemonScan    *obs.Counter // vm.scan.daemon
	cForkCopy      *obs.Counter // vm.fork.copy

	storm stormState

	firstConflictUtil float64
	sawConflict       bool

	lowFrames, highFrames int
	candScratch           []alloc.Candidate
	scan                  *scanState

	evictHook func(asid core.ASID, vpn core.VPN)
}

// New creates a System from cfg.
func New(cfg Config) (*System, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:     cfg,
		mode:    cfg.Mode,
		dev:     swap.NewDevice(),
		spaces:  make(map[core.ASID]*AddressSpace),
		regions: make(map[uint32]*SharedRegion),
	}
	if cfg.Obs != nil {
		s.metrics = cfg.Obs.Metrics
		s.events = cfg.Obs.Events
	}
	if s.metrics == nil {
		s.metrics = obs.NewRegistry()
	}
	s.cAccess = s.metrics.Counter("vm.access")
	s.cMinorFault = s.metrics.Counter("vm.fault.minor")
	s.cMajorFault = s.metrics.Counter("vm.fault.major")
	s.cConflict = s.metrics.Counter("vm.conflict")
	s.cGhostReclaim = s.metrics.Counter("vm.ghost.reclaim")
	s.cEvict = s.metrics.Counter("vm.evict")
	s.cConflictEvict = s.metrics.Counter("vm.evict.conflict")
	s.cReclaim = s.metrics.Counter("vm.reclaim")
	s.cDaemonScan = s.metrics.Counter("vm.scan.daemon")
	s.cForkCopy = s.metrics.Counter("vm.fork.copy")
	s.dev.Instrument(s.metrics)
	switch cfg.Mode {
	case ModeMosaic:
		s.mem = alloc.NewMemory(cfg.Frames, cfg.Geometry, cfg.Hash)
		s.hlru = swap.NewHorizonLRU()
		s.candScratch = make([]alloc.Candidate, cfg.Geometry.Associativity())
		if cfg.ScanInterval > 0 {
			s.scan = newScanState(s.mem.NumFrames(), cfg.ScanInterval)
		}
	case ModeVanilla:
		if cfg.ScanInterval > 0 {
			return nil, fmt.Errorf("vm: ScanInterval applies to mosaic mode only")
		}
		s.umem = alloc.NewUnconstrained(cfg.Frames)
		switch cfg.Policy {
		case PolicyTwoList:
			s.policy = swap.NewTwoListLRU(cfg.Frames)
		case PolicyTrueLRU:
			s.policy = swap.NewTrueLRU(cfg.Frames)
		case PolicyClock:
			s.policy = swap.NewClock(cfg.Frames)
		default:
			return nil, fmt.Errorf("vm: unknown baseline policy %d", cfg.Policy)
		}
		s.lowFrames = int(cfg.LowWatermark * float64(cfg.Frames))
		s.highFrames = int(cfg.HighWatermark * float64(cfg.Frames))
		if s.lowFrames < 1 {
			s.lowFrames = 1
		}
		if s.highFrames < s.lowFrames {
			s.highFrames = s.lowFrames
		}
	default:
		return nil, fmt.Errorf("vm: unknown mode %d", cfg.Mode)
	}
	return s, nil
}

// Mode reports the system's mode.
func (s *System) Mode() Mode { return s.mode }

// NumFrames is the physical memory size in frames.
func (s *System) NumFrames() int {
	if s.mode == ModeMosaic {
		return s.mem.NumFrames()
	}
	return s.umem.NumFrames()
}

// Used is the number of resident pages (mosaic: live + ghost).
func (s *System) Used() int {
	if s.mode == ModeMosaic {
		return s.mem.Used()
	}
	return s.umem.Used()
}

// Utilization is Used over NumFrames.
func (s *System) Utilization() float64 { return float64(s.Used()) / float64(s.NumFrames()) }

// Clock is the logical access clock (one tick per Touch).
func (s *System) Clock() uint64 { return s.clock }

// Device exposes the swap device for I/O accounting.
func (s *System) Device() *swap.Device { return s.dev }

// Metrics exposes the instrument registry. The system's counters are
// vm.access, vm.fault.minor, vm.fault.major, vm.conflict, vm.ghost.reclaim,
// vm.evict, vm.evict.conflict, vm.reclaim, vm.scan.daemon, vm.fork.copy,
// plus the swap device's swap.out and swap.in.
func (s *System) Metrics() *obs.Registry { return s.metrics }

// Allocator exposes the iceberg-constrained allocator (mosaic mode only;
// nil in vanilla mode) so samplers can probe slot occupancy by level.
func (s *System) Allocator() *alloc.Memory { return s.mem }

// Horizon reports the Horizon LRU ghost threshold (mosaic mode; zero
// otherwise).
func (s *System) Horizon() uint64 {
	if s.hlru == nil {
		return 0
	}
	return s.hlru.Horizon()
}

// GhostCount counts resident ghost pages (mosaic mode). It scans memory.
func (s *System) GhostCount() int {
	if s.mode != ModeMosaic {
		return 0
	}
	return s.mem.Used() - s.mem.LiveCount(s.hlru.Horizon())
}

// FirstConflictUtilization reports the memory utilization at the moment of
// the first associativity conflict, and whether one has occurred. This is
// the 1−δ column of Table 3.
func (s *System) FirstConflictUtilization() (float64, bool) {
	return s.firstConflictUtil, s.sawConflict
}

// Space returns (creating if needed) the address space for asid. It panics
// for the reserved shared-mapping ASID 0xFFFFFFFF.
func (s *System) Space(asid core.ASID) *AddressSpace {
	if asid == sharedASID {
		panic("vm: ASID 0xFFFFFFFF is reserved for shared mappings")
	}
	as, ok := s.spaces[asid]
	if !ok {
		as = &AddressSpace{
			asid:    asid,
			private: make(map[core.VPN]*page),
			shared:  make(map[core.VPN]sharedRef),
		}
		s.spaces[asid] = as
	}
	return as
}

// Touch performs one memory access: demand paging, swap-in, recency update.
func (s *System) Touch(asid core.ASID, vpn core.VPN, write bool) AccessResult {
	s.clock++
	s.cAccess.Inc()
	if s.scan != nil && s.clock%s.scan.interval == 0 {
		s.runScan()
	}
	as := s.Space(asid)

	if ref, ok := as.shared[vpn]; ok {
		return s.touchShared(ref, write)
	}

	pg, ok := as.private[vpn]
	if !ok {
		pg = &page{}
		as.private[vpn] = pg
		s.cMinorFault.Inc()
		s.fillPage(asid, vpn, pg, write)
		return MinorFault
	}
	switch pg.state {
	case pageResident:
		s.touchFrame(pg.pfn, write)
		return Hit
	case pageSwapped:
		s.cMajorFault.Inc()
		if !s.dev.PageIn(alloc.Owner{ASID: asid, VPN: vpn}) {
			//lint:ignore nopanic every page marked pageSwapped was handed to the device by recordEviction
			panic("vm: swapped page missing from swap device")
		}
		s.fillPage(asid, vpn, pg, write)
		return MajorFault
	default:
		//lint:ignore nopanic the page-state enum has exactly three values; absent pages never reach this switch
		panic("vm: invalid page state")
	}
}

// TouchVA is Touch keyed by virtual address rather than VPN.
func (s *System) TouchVA(asid core.ASID, va uint64, write bool) AccessResult {
	return s.Touch(asid, core.VPNOf(va), write)
}

func (s *System) touchFrame(pfn core.PFN, write bool) {
	if s.mode == ModeMosaic {
		if s.scan != nil {
			// Access-bit emulation: hardware sets only the bit; the scan
			// daemon converts it to a timestamp later.
			s.scan.accessed[pfn] = true
			if write {
				s.mem.MarkDirty(pfn)
			}
			return
		}
		s.mem.Touch(pfn, s.clock, write)
		return
	}
	s.umem.Touch(pfn, s.clock, write)
	s.policy.OnAccess(pfn)
}

// fillPage allocates a frame for (asid, vpn) and installs it in pg.
func (s *System) fillPage(asid core.ASID, vpn core.VPN, pg *page, write bool) {
	pfn, cpfn := s.allocate(asid, vpn)
	pg.state = pageResident
	pg.pfn = pfn
	pg.cpfn = cpfn
	if write {
		s.touchDirty(pfn)
	}
}

func (s *System) touchDirty(pfn core.PFN) {
	if s.mode == ModeMosaic {
		s.mem.Touch(pfn, s.clock, true)
	} else {
		s.umem.Touch(pfn, s.clock, true)
	}
}

// allocate places (asid, vpn), evicting as required by the mode's policy.
func (s *System) allocate(asid core.ASID, vpn core.VPN) (core.PFN, core.CPFN) {
	if s.mode == ModeMosaic {
		return s.allocateMosaic(asid, vpn)
	}
	return s.allocateVanilla(asid, vpn), core.CPFNInvalid
}

func (s *System) allocateMosaic(asid core.ASID, vpn core.VPN) (core.PFN, core.CPFN) {
	p, err := s.mem.Place(asid, vpn, s.clock, s.hlru.Horizon())
	if err == nil {
		if p.Evicted != nil {
			// A ghost's frame was reclaimed: the ghost now really leaves
			// memory, which is when its swap-out happens.
			s.cGhostReclaim.Inc()
			s.recordEviction(*p.Evicted)
		}
		return p.PFN, p.CPFN
	}
	if !errors.Is(err, alloc.ErrConflict) {
		//lint:ignore nopanic Place documents ErrConflict as its only error; anything else is an allocator bug
		panic(fmt.Sprintf("vm: unexpected placement error: %v", err))
	}
	// Associativity conflict (§2.4): evict the LRU page among the
	// candidates, raise the horizon to its access time (ghosting every
	// older page globally), and take over the victim's slot.
	s.cConflict.Inc()
	if !s.sawConflict {
		s.sawConflict = true
		s.firstConflictUtil = s.mem.Utilization()
		if s.events != nil {
			s.events.Emit(obs.Event{
				Ref: s.clock, Component: "vm", Kind: "conflict.first", Severity: obs.Info,
				Message: "first associativity conflict (1-delta of Table 3)",
				Fields:  map[string]float64{"utilization": s.firstConflictUtil},
			})
		}
	}
	cands := s.mem.Candidates(asid, vpn, s.candScratch)
	victim, ok := s.hlru.PickVictim(cands)
	if !ok {
		//lint:ignore nopanic ErrConflict means all candidate slots hold live pages, so a victim must exist
		panic("vm: conflict with no occupied candidates")
	}
	if !s.cfg.DisableHorizon {
		before := s.hlru.Horizon()
		s.hlru.NoteEviction(victim.LastAccess)
		if after := s.hlru.Horizon(); after > before && s.events != nil {
			s.events.Emit(obs.Event{
				Ref: s.clock, Component: "vm", Kind: "horizon.advance", Severity: obs.Info,
				Fields: map[string]float64{"from": float64(before), "to": float64(after)},
			})
		}
	}
	owner := s.mem.Evict(victim.PFN)
	s.cConflictEvict.Inc()
	s.recordEviction(owner)
	p = s.mem.PlaceAt(asid, vpn, victim.CPFN, s.clock)
	return p.PFN, p.CPFN
}

func (s *System) allocateVanilla(asid core.ASID, vpn core.VPN) core.PFN {
	// kswapd emulation: once free memory dips below the low watermark,
	// reclaim until the high watermark is restored.
	if s.umem.FreeFrames() <= s.lowFrames {
		for s.umem.FreeFrames() < s.highFrames && s.policy.Len() > 0 {
			s.reclaimOneVanilla()
		}
	}
	for {
		pfn, err := s.umem.Place(asid, vpn, s.clock)
		if err == nil {
			s.policy.OnFault(pfn)
			return pfn
		}
		if !errors.Is(err, alloc.ErrNoMemory) {
			//lint:ignore nopanic Unconstrained.Place documents ErrNoMemory as its only error
			panic(fmt.Sprintf("vm: unexpected placement error: %v", err))
		}
		// Direct reclaim.
		s.reclaimOneVanilla()
	}
}

func (s *System) reclaimOneVanilla() {
	victim := s.policy.Victim()
	s.policy.OnRemove(victim)
	owner := s.umem.Evict(victim)
	s.cReclaim.Inc()
	s.recordEviction(owner)
}

// OnEvict registers fn to run whenever a page leaves memory for swap —
// the hook the memory-system simulator uses for page-table invalidation
// and TLB shootdown. Shared-region pages report the reserved shared ASID
// (0xFFFFFFFF) with a synthetic VPN.
func (s *System) OnEvict(fn func(asid core.ASID, vpn core.VPN)) { s.evictHook = fn }

// Eviction-storm detection: stormThreshold evictions within one
// stormWindow of the access clock is thrashing-grade pressure worth a
// structured warning (once per window, not once per eviction).
const (
	stormWindow    = 1024
	stormThreshold = 64
)

type stormState struct {
	windowStart uint64
	count       uint64
	warned      bool
}

// noteEvictionStorm advances the storm window and emits at most one warning
// per window once the threshold is crossed.
func (s *System) noteEvictionStorm() {
	st := &s.storm
	if s.clock-st.windowStart >= stormWindow {
		st.windowStart = s.clock
		st.count = 0
		st.warned = false
	}
	st.count++
	if st.count >= stormThreshold && !st.warned {
		st.warned = true
		s.events.Emit(obs.Event{
			Ref: s.clock, Component: "vm", Kind: "eviction.storm", Severity: obs.Warn,
			Message: "eviction rate at thrashing levels",
			Fields: map[string]float64{
				"evictions":   float64(st.count),
				"window_refs": float64(stormWindow),
				"utilization": s.Utilization(),
			},
		})
	}
}

// recordEviction pushes an evicted page to the swap device and updates the
// owning address space (or shared region).
func (s *System) recordEviction(owner alloc.Owner) {
	s.cEvict.Inc()
	if s.events != nil {
		s.noteEvictionStorm()
	}
	if s.evictHook != nil {
		s.evictHook(owner.ASID, owner.VPN)
	}
	s.dev.PageOut(owner)
	if owner.ASID == sharedASID {
		rid, idx := splitSharedVPN(owner.VPN)
		r, ok := s.regions[rid]
		if !ok {
			//lint:ignore nopanic shared owners are minted from live regions, and regions are never deleted
			panic(fmt.Sprintf("vm: evicted page of unknown shared region %d", rid))
		}
		r.pages[idx].state = pageSwapped
		return
	}
	as, ok := s.spaces[owner.ASID]
	if !ok {
		//lint:ignore nopanic frame owners are recorded at placement from existing spaces
		panic(fmt.Sprintf("vm: evicted page of unknown ASID %d", owner.ASID))
	}
	pg, ok := as.private[owner.VPN]
	if !ok || pg.state != pageResident {
		//lint:ignore nopanic the allocator reported this owner as occupying the frame, so its space must show it resident
		panic(fmt.Sprintf("vm: evicted page (asid %d, vpn %#x) not resident in its space", owner.ASID, owner.VPN))
	}
	pg.state = pageSwapped
}

// Translate returns the physical frame of (asid, vpn) if resident.
func (s *System) Translate(asid core.ASID, vpn core.VPN) (core.PFN, bool) {
	as, ok := s.spaces[asid]
	if !ok {
		return 0, false
	}
	if ref, ok := as.shared[vpn]; ok {
		pg := &ref.region.pages[ref.index]
		if pg.state != pageResident {
			return 0, false
		}
		return pg.pfn, true
	}
	pg, ok := as.private[vpn]
	if !ok || pg.state != pageResident {
		return 0, false
	}
	return pg.pfn, true
}

// CPFNFor returns the compressed frame number of (asid, vpn) if resident
// (mosaic mode only) — what a mosaic page-table leaf stores.
func (s *System) CPFNFor(asid core.ASID, vpn core.VPN) (core.CPFN, bool) {
	if s.mode != ModeMosaic {
		return core.CPFNInvalid, false
	}
	as, ok := s.spaces[asid]
	if !ok {
		return core.CPFNInvalid, false
	}
	if ref, ok := as.shared[vpn]; ok {
		pg := &ref.region.pages[ref.index]
		if pg.state != pageResident {
			return core.CPFNInvalid, false
		}
		return pg.cpfn, true
	}
	pg, ok := as.private[vpn]
	if !ok || pg.state != pageResident {
		return core.CPFNInvalid, false
	}
	return pg.cpfn, true
}

// Resident reports whether (asid, vpn) is currently in memory.
func (s *System) Resident(asid core.ASID, vpn core.VPN) bool {
	_, ok := s.Translate(asid, vpn)
	return ok
}

// Unmap destroys the mapping of (asid, vpn), freeing its frame or dropping
// its swap slot. It reports whether a mapping existed.
func (s *System) Unmap(asid core.ASID, vpn core.VPN) bool {
	as, ok := s.spaces[asid]
	if !ok {
		return false
	}
	if ref, ok := as.shared[vpn]; ok {
		delete(as.shared, vpn)
		s.releaseSharedMapping(ref.region)
		return true
	}
	pg, ok := as.private[vpn]
	if !ok {
		return false
	}
	delete(as.private, vpn)
	switch pg.state {
	case pageResident:
		if s.mode == ModeMosaic {
			s.mem.Free(pg.pfn)
		} else {
			s.policy.OnRemove(pg.pfn)
			s.umem.Free(pg.pfn)
		}
	case pageSwapped:
		s.dev.Drop(alloc.Owner{ASID: asid, VPN: vpn})
	}
	return true
}

// MappedPages reports the number of mapped pages (resident or swapped) in
// asid's space, excluding shared mappings.
func (s *System) MappedPages(asid core.ASID) int {
	as, ok := s.spaces[asid]
	if !ok {
		return 0
	}
	return len(as.private)
}
