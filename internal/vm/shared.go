package vm

import (
	"fmt"

	"mosaic/internal/alloc"
	"mosaic/internal/core"
)

// The §2.5 location-ID extension: shared pages are hashed by
// (location ID, index) instead of (ASID, VPN), so every mapping of a region
// resolves to the same candidate frames and the same CPFNs. Internally a
// shared page is identified by a synthetic owner in the reserved sharedASID
// namespace whose VPN packs (regionID, index).

const sharedIndexBits = 24

func sharedVPN(rid uint32, index int) core.VPN {
	return core.VPN(uint64(rid)<<sharedIndexBits | uint64(index))
}

func splitSharedVPN(vpn core.VPN) (rid uint32, index int) {
	return uint32(uint64(vpn) >> sharedIndexBits), int(uint64(vpn) & (1<<sharedIndexBits - 1))
}

// CreateSharedRegion allocates a region of n pages shareable across address
// spaces. The location ID is assigned sequentially; the paper suggests
// random assignment to enable cheap hardware hashing, but for placement
// behaviour only distinctness matters.
func (s *System) CreateSharedRegion(n int) (*SharedRegion, error) {
	if n <= 0 {
		return nil, fmt.Errorf("vm: shared region size %d must be positive", n)
	}
	if n >= 1<<sharedIndexBits {
		return nil, fmt.Errorf("vm: shared region size %d exceeds %d pages", n, 1<<sharedIndexBits-1)
	}
	s.nextRID++
	r := &SharedRegion{id: s.nextRID, pages: make([]page, n)}
	s.regions[r.id] = r
	return r, nil
}

// MapShared maps region into asid's address space at [baseVPN,
// baseVPN+region.Len()). The pages themselves fault in lazily on first
// touch from any mapping.
func (s *System) MapShared(asid core.ASID, baseVPN core.VPN, region *SharedRegion) error {
	if region == nil {
		return fmt.Errorf("vm: nil shared region")
	}
	if s.regions[region.id] != region {
		return fmt.Errorf("vm: shared region %d does not belong to this system", region.id)
	}
	as := s.Space(asid)
	for i := 0; i < region.Len(); i++ {
		vpn := baseVPN + core.VPN(i)
		if _, clash := as.private[vpn]; clash {
			return fmt.Errorf("vm: VPN %#x already privately mapped in ASID %d", vpn, asid)
		}
		if _, clash := as.shared[vpn]; clash {
			return fmt.Errorf("vm: VPN %#x already share-mapped in ASID %d", vpn, asid)
		}
	}
	for i := 0; i < region.Len(); i++ {
		as.shared[baseVPN+core.VPN(i)] = sharedRef{region: region, index: i}
	}
	region.maps++
	return nil
}

// UnmapShared removes a whole shared mapping from asid's space.
func (s *System) UnmapShared(asid core.ASID, baseVPN core.VPN, region *SharedRegion) error {
	as, ok := s.spaces[asid]
	if !ok {
		return fmt.Errorf("vm: ASID %d has no address space", asid)
	}
	for i := 0; i < region.Len(); i++ {
		vpn := baseVPN + core.VPN(i)
		ref, ok := as.shared[vpn]
		if !ok || ref.region != region || ref.index != i {
			return fmt.Errorf("vm: VPN %#x is not a mapping of region %d", vpn, region.id)
		}
	}
	for i := 0; i < region.Len(); i++ {
		delete(as.shared, baseVPN+core.VPN(i))
	}
	s.releaseSharedMapping(region)
	return nil
}

// releaseSharedMapping drops one mapping reference; when the last mapping
// goes away the region's pages are freed.
func (s *System) releaseSharedMapping(region *SharedRegion) {
	region.maps--
	if region.maps > 0 {
		return
	}
	for i := range region.pages {
		pg := &region.pages[i]
		switch pg.state {
		case pageResident:
			if s.mode == ModeMosaic {
				s.mem.Free(pg.pfn)
			} else {
				s.policy.OnRemove(pg.pfn)
				s.umem.Free(pg.pfn)
			}
		case pageSwapped:
			s.dev.Drop(alloc.Owner{ASID: sharedASID, VPN: sharedVPN(region.id, i)})
		}
		*pg = page{}
	}
	delete(s.regions, region.id)
}

func (s *System) touchShared(ref sharedRef, write bool) AccessResult {
	pg := &ref.region.pages[ref.index]
	owner := alloc.Owner{ASID: sharedASID, VPN: sharedVPN(ref.region.id, ref.index)}
	switch pg.state {
	case pageResident:
		s.touchFrame(pg.pfn, write)
		return Hit
	case pageSwapped:
		s.cMajorFault.Inc()
		if !s.dev.PageIn(owner) {
			//lint:ignore nopanic every shared page marked pageSwapped was handed to the device by recordEviction
			panic("vm: swapped shared page missing from swap device")
		}
		s.fillSharedPage(owner, pg, write)
		return MajorFault
	default:
		s.cMinorFault.Inc()
		s.fillSharedPage(owner, pg, write)
		return MinorFault
	}
}

func (s *System) fillSharedPage(owner alloc.Owner, pg *page, write bool) {
	pfn, cpfn := s.allocate(owner.ASID, owner.VPN)
	pg.state = pageResident
	pg.pfn = pfn
	pg.cpfn = cpfn
	if write {
		s.touchDirty(pfn)
	}
}
