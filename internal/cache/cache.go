// Package cache models a multi-level set-associative cache hierarchy with
// true-LRU replacement and write-back/write-allocate semantics, matching
// the memory system of Table 1a (L1i/L1d, unified L2, unified L3). The
// memory-system simulator routes both data references and page-table-walker
// reads through a Hierarchy, so walk traffic pollutes the caches as it does
// in the paper's gem5 configuration.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	// Name labels the level in statistics ("L1d", "L2", …).
	Name string
	// Size is the capacity in bytes.
	Size int
	// Ways is the set associativity.
	Ways int
	// LineSize is the block size in bytes (default 64).
	LineSize int
	// Latency is the access latency in cycles (informational, used for the
	// aggregate latency estimate).
	Latency int
}

func (c *Config) applyDefaults() error {
	if c.LineSize == 0 {
		c.LineSize = 64
	}
	if c.Size <= 0 || c.Ways <= 0 || c.LineSize <= 0 {
		return fmt.Errorf("cache: %s: size %d, ways %d, line %d must be positive",
			c.Name, c.Size, c.Ways, c.LineSize)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache: %s: line size %d not a power of two", c.Name, c.LineSize)
	}
	lines := c.Size / c.LineSize
	if lines*c.LineSize != c.Size || lines%c.Ways != 0 {
		return fmt.Errorf("cache: %s: size %d not divisible into %d-way sets of %d-byte lines",
			c.Name, c.Size, c.Ways, c.LineSize)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// Stats counts per-level events.
type Stats struct {
	Hits, Misses, Evictions, Writebacks uint64
}

// MissRate is Misses over (Hits + Misses).
func (s Stats) MissRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Misses) / float64(t)
	}
	return 0
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // smaller = older
}

// Level is a single cache. The lines of all sets live in one flat backing
// array indexed by set*ways+way, so a probe computes its set base with one
// multiply instead of loading a per-set slice header — the same
// struct-of-arrays discipline the TLB sets use, and the layout the batched
// replay hot path leans on.
type Level struct {
	cfg       Config
	lines     []line
	ways      int
	setMask   uint64
	lineShift uint
	tick      uint64
	stats     Stats
}

// NewLevel builds one cache level.
func NewLevel(cfg Config) (*Level, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	numSets := cfg.Size / cfg.LineSize / cfg.Ways
	l := &Level{cfg: cfg, ways: cfg.Ways, setMask: uint64(numSets - 1)}
	shift := uint(0)
	for 1<<shift < cfg.LineSize {
		shift++
	}
	l.lineShift = shift
	l.lines = make([]line, numSets*cfg.Ways)
	return l, nil
}

// set returns the ways of the set holding tag as a full-capacity subslice.
// The three-index form keeps neighbouring sets unreachable and gives the
// probe loops a slice whose length the compiler knows is exactly ways, so
// the range loops in lookup and fill run without bounds checks (bcegate
// pins this).
func (l *Level) set(tag uint64) []line {
	base := int(tag&l.setMask) * l.ways
	return l.lines[base : base+l.ways : base+l.ways]
}

// Config returns the level's configuration (with defaults applied).
func (l *Level) Config() Config { return l.cfg }

// Stats returns the level's counters.
func (l *Level) Stats() Stats { return l.stats }

// lookup probes for the line containing pa; on hit it updates recency and
// dirtiness.
func (l *Level) lookup(pa uint64, write bool) bool {
	tag := pa >> l.lineShift
	set := l.set(tag)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			l.tick++
			set[i].lru = l.tick
			if write {
				set[i].dirty = true
			}
			l.stats.Hits++
			return true
		}
	}
	l.stats.Misses++
	return false
}

// fill inserts the line containing pa, returning the victim line's address
// and dirtiness if a valid line was evicted.
func (l *Level) fill(pa uint64, dirty bool) (victimPA uint64, victimDirty, evicted bool) {
	tag := pa >> l.lineShift
	set := l.set(tag)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			goto place
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	evicted = true
	victimPA = set[victim].tag << l.lineShift
	victimDirty = set[victim].dirty
	l.stats.Evictions++
place:
	l.tick++
	set[victim] = line{tag: tag, valid: true, dirty: dirty, lru: l.tick}
	return victimPA, victimDirty, evicted
}

// contains probes without updating any state (test helper).
func (l *Level) contains(pa uint64) bool {
	tag := pa >> l.lineShift
	for _, ln := range l.set(tag) {
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// Hierarchy chains levels; a miss at level i falls through to level i+1 and
// finally to memory. Fills propagate back up (each missed level receives
// the line); dirty victims write back into the next level down.
type Hierarchy struct {
	levels     []*Level
	memLatency int
	memReads   uint64
	memWrites  uint64
	totalCyc   uint64
	accesses   uint64
}

// NewHierarchy builds a hierarchy from outermost-first configs (L1 first).
// memLatency is the DRAM access latency in cycles.
func NewHierarchy(memLatency int, cfgs ...Config) (*Hierarchy, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("cache: hierarchy needs at least one level")
	}
	if memLatency <= 0 {
		memLatency = 100
	}
	h := &Hierarchy{memLatency: memLatency}
	for _, cfg := range cfgs {
		l, err := NewLevel(cfg)
		if err != nil {
			return nil, err
		}
		h.levels = append(h.levels, l)
	}
	return h, nil
}

// Levels exposes the individual levels, L1 first.
func (h *Hierarchy) Levels() []*Level { return h.levels }

// Access performs one physical-address access, returning its modeled
// latency in cycles.
func (h *Hierarchy) Access(pa uint64, write bool) int {
	h.accesses++
	latency := 0
	hitLevel := -1
	for i, l := range h.levels {
		latency += l.cfg.Latency
		if l.lookup(pa, write && i == 0) {
			hitLevel = i
			break
		}
	}
	if hitLevel < 0 {
		latency += h.memLatency
		h.memReads++
	}
	// Fill the line into every level that missed, propagating dirty
	// victims downward.
	from := len(h.levels) - 1
	if hitLevel >= 0 {
		from = hitLevel - 1
	}
	for i := from; i >= 0; i-- {
		dirty := write && i == 0
		victimPA, victimDirty, evicted := h.levels[i].fill(pa, dirty)
		if evicted && victimDirty {
			h.levels[i].stats.Writebacks++
			h.writeBack(i+1, victimPA)
		}
	}
	h.totalCyc += uint64(latency)
	return latency
}

// writeBack deposits a dirty victim into level i (or memory).
func (h *Hierarchy) writeBack(i int, pa uint64) {
	if i >= len(h.levels) {
		h.memWrites++
		return
	}
	l := h.levels[i]
	tag := pa >> l.lineShift
	set := l.set(tag)
	for j := range set {
		if set[j].valid && set[j].tag == tag {
			set[j].dirty = true
			return
		}
	}
	// Victim not present below (exclusive-ish moment): allocate it there.
	victimPA, victimDirty, evicted := l.fill(pa, true)
	if evicted && victimDirty {
		l.stats.Writebacks++
		h.writeBack(i+1, victimPA)
	}
}

// MemReads is the number of DRAM read accesses (demand misses).
func (h *Hierarchy) MemReads() uint64 { return h.memReads }

// MemWrites is the number of DRAM write-backs.
func (h *Hierarchy) MemWrites() uint64 { return h.memWrites }

// Accesses is the total number of Access calls.
func (h *Hierarchy) Accesses() uint64 { return h.accesses }

// TotalCycles is the sum of modeled access latencies.
func (h *Hierarchy) TotalCycles() uint64 { return h.totalCyc }

// AMAT is the average memory access time in cycles.
func (h *Hierarchy) AMAT() float64 {
	if h.accesses == 0 {
		return 0
	}
	return float64(h.totalCyc) / float64(h.accesses)
}

// Table1a returns the cache configuration of the paper's gem5 platform:
// 64 KiB 2-way L1d, 32 KiB 2-way L1i, 2 MiB 8-way L2, 16 MiB 16-way L3.
// The instruction cache is omitted here because the simulator replays data
// references; use it separately if modeling fetch.
func Table1a() []Config {
	return []Config{
		{Name: "L1d", Size: 64 << 10, Ways: 2, Latency: 2},
		{Name: "L2", Size: 2 << 20, Ways: 8, Latency: 12},
		{Name: "L3", Size: 16 << 20, Ways: 16, Latency: 35},
	}
}
