package cache

import (
	"math/rand"
	"testing"
)

func mustLevel(t testing.TB, cfg Config) *Level {
	t.Helper()
	l, err := NewLevel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Name: "zero", Size: 0, Ways: 2},
		{Name: "ways", Size: 1024, Ways: 0},
		{Name: "line", Size: 1024, Ways: 2, LineSize: 48},
		{Name: "sets", Size: 64 * 2 * 3, Ways: 2}, // 3 sets
	}
	for _, cfg := range bad {
		if _, err := NewLevel(cfg); err == nil {
			t.Errorf("%s: accepted invalid config", cfg.Name)
		}
	}
	l := mustLevel(t, Config{Name: "ok", Size: 1024, Ways: 2})
	if l.Config().LineSize != 64 {
		t.Errorf("default line size = %d", l.Config().LineSize)
	}
}

func TestLevelHitMissLRU(t *testing.T) {
	// 2 sets × 2 ways × 64 B lines = 256 B.
	l := mustLevel(t, Config{Name: "t", Size: 256, Ways: 2})
	if l.lookup(0, false) {
		t.Fatal("hit in empty cache")
	}
	l.fill(0, false)
	if !l.lookup(0, false) {
		t.Fatal("miss after fill")
	}
	// Same set: lines at strides of 128 B. Fill two more to evict LRU.
	l.fill(128, false)
	l.lookup(0, false) // 0 MRU, 128 LRU
	if _, _, evicted := l.fill(256, false); !evicted {
		t.Fatal("no eviction from full set")
	}
	if l.contains(128) {
		t.Error("LRU line survived")
	}
	if !l.contains(0) {
		t.Error("MRU line evicted")
	}
}

func TestDirtyVictimReported(t *testing.T) {
	l := mustLevel(t, Config{Name: "t", Size: 128, Ways: 1})
	l.fill(0, false)
	l.lookup(0, true) // dirty it
	victimPA, victimDirty, evicted := l.fill(128, false)
	if !evicted || !victimDirty || victimPA != 0 {
		t.Fatalf("victim = %#x dirty=%v evicted=%v", victimPA, victimDirty, evicted)
	}
}

func newTestHierarchy(t testing.TB) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(100,
		Config{Name: "L1", Size: 1 << 10, Ways: 2, Latency: 1},
		Config{Name: "L2", Size: 8 << 10, Ways: 4, Latency: 10},
	)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchyFillPath(t *testing.T) {
	h := newTestHierarchy(t)
	lat := h.Access(0x1000, false)
	if lat != 1+10+100 {
		t.Errorf("cold access latency = %d", lat)
	}
	if h.MemReads() != 1 {
		t.Errorf("mem reads = %d", h.MemReads())
	}
	// Second access: L1 hit.
	if lat := h.Access(0x1000, false); lat != 1 {
		t.Errorf("warm access latency = %d", lat)
	}
	l1, l2 := h.Levels()[0].Stats(), h.Levels()[1].Stats()
	if l1.Hits != 1 || l1.Misses != 1 || l2.Misses != 1 || l2.Hits != 0 {
		t.Errorf("l1=%+v l2=%+v", l1, l2)
	}
	if h.Accesses() != 2 {
		t.Errorf("accesses = %d", h.Accesses())
	}
	if h.AMAT() != float64(111+1)/2 {
		t.Errorf("AMAT = %f", h.AMAT())
	}
}

func TestHierarchyL2HitAfterL1Eviction(t *testing.T) {
	h := newTestHierarchy(t)
	// L1: 1 KiB, 2-way, 64 B lines → 8 sets; addresses 0, 512, 1024 share
	// set 0. Fill three lines to evict one from L1; it should still hit L2.
	h.Access(0, false)
	h.Access(512, false)
	h.Access(1024, false) // evicts 0 from L1
	lat := h.Access(0, false)
	if lat != 1+10 {
		t.Errorf("L2-hit latency = %d, want 11", lat)
	}
	if h.MemReads() != 3 {
		t.Errorf("mem reads = %d, want 3", h.MemReads())
	}
}

func TestHierarchyWritebackReachesMemory(t *testing.T) {
	h, err := NewHierarchy(100, Config{Name: "L1", Size: 128, Ways: 1, Latency: 1})
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0, true)   // dirty line 0
	h.Access(128, true) // evicts dirty 0 → memory write
	if h.MemWrites() != 1 {
		t.Errorf("mem writes = %d, want 1", h.MemWrites())
	}
	if h.Levels()[0].Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d", h.Levels()[0].Stats().Writebacks)
	}
}

func TestHierarchyDirtyVictimLandsInL2(t *testing.T) {
	h := newTestHierarchy(t)
	h.Access(0, true)
	h.Access(512, false)
	h.Access(1024, false) // dirty 0 falls to L2
	if h.MemWrites() != 0 {
		t.Errorf("dirty victim went to memory instead of L2")
	}
	// 0 must hit in L2 now.
	if lat := h.Access(0, false); lat != 11 {
		t.Errorf("latency for L2 hit = %d", lat)
	}
}

func TestSpatialLocalitySameLine(t *testing.T) {
	h := newTestHierarchy(t)
	h.Access(0x200, false)
	if lat := h.Access(0x23F, false); lat != 1 {
		t.Errorf("same-line access latency = %d, want 1 (64 B line)", lat)
	}
	if lat := h.Access(0x240, false); lat == 1 {
		t.Error("next line should miss")
	}
}

func TestHierarchyRandomizedConservation(t *testing.T) {
	h := newTestHierarchy(t)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50000; i++ {
		h.Access(uint64(rng.Intn(1<<16))&^0x3, rng.Intn(4) == 0)
	}
	l1, l2 := h.Levels()[0].Stats(), h.Levels()[1].Stats()
	// Every L1 miss probes L2.
	if l1.Misses != l2.Hits+l2.Misses {
		t.Errorf("L1 misses %d != L2 lookups %d", l1.Misses, l2.Hits+l2.Misses)
	}
	// Demand misses at the last level go to memory.
	if l2.Misses != h.MemReads() {
		t.Errorf("L2 misses %d != mem reads %d", l2.Misses, h.MemReads())
	}
	if l1.Hits+l1.Misses != h.Accesses() {
		t.Errorf("L1 lookups %d != accesses %d", l1.Hits+l1.Misses, h.Accesses())
	}
}

func TestTable1aConfigs(t *testing.T) {
	h, err := NewHierarchy(0, Table1a()...)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Levels()) != 3 {
		t.Fatalf("levels = %d", len(h.Levels()))
	}
	if h.Levels()[0].Config().Size != 64<<10 || h.Levels()[2].Config().Ways != 16 {
		t.Error("Table1a geometry mismatch")
	}
}

func TestHierarchyValidation(t *testing.T) {
	if _, err := NewHierarchy(10); err == nil {
		t.Error("empty hierarchy accepted")
	}
	if _, err := NewHierarchy(10, Config{Name: "bad", Size: -1, Ways: 1}); err == nil {
		t.Error("bad level accepted")
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h, _ := NewHierarchy(100, Table1a()...)
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 1<<14)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 26))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(addrs[i&(1<<14-1)], false)
	}
}
