// Command frag runs the fragmentation experiment behind the paper's
// motivation (§1): how much of a new region can 2 MiB huge pages still
// back as physical memory fragments, what would defragmentation cost, and
// how the mosaic allocator — which needs no contiguity — compares at the
// same occupancy.
//
// Usage:
//
//	frag [-frames N] [-free F] [-seed N] [-csv] [-json] [-o path]
//	     [-cpuprofile path]
package main

import (
	"flag"
	"fmt"
	"os"

	"mosaic"
	"mosaic/internal/results"
	"mosaic/internal/stats"
)

func main() {
	frames := flag.Int("frames", 1<<14, "physical frames (default 64 MiB)")
	free := flag.Float64("free", 0.5, "fraction of memory freed before the new region faults (paper's point: 0.5)")
	seed := flag.Uint64("seed", 1, "random seed")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	drv := results.NewDriver("frag", nil)
	flag.Parse()
	if err := drv.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "frag: %v\n", err)
		os.Exit(1)
	}
	defer drv.Close()
	drv.Stepf("frag: %d frames, %.0f%% freed", *frames, 100**free)

	rows, err := mosaic.Fragmentation(mosaic.FragmentationOptions{
		Frames:   *frames,
		FreeFrac: *free,
		Seed:     *seed,
		Workers:  drv.Workers,
		Progress: drv.Progress(),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "frag: %v\n", err)
		os.Exit(1)
	}
	out := results.New("frag")
	out.Config = map[string]any{"frames": *frames, "free": *free, "seed": *seed}
	for _, r := range rows {
		key := fmt.Sprintf("frag.chunk_%dk.", (1<<r.ChunkOrder)*4)
		out.SetMetric(key+"unusable_index", r.UnusableIndex)
		out.SetMetric(key+"huge_backed_pct", r.HugeBackedPct)
		out.SetMetric(key+"compaction_copies", float64(r.CompactionCopies))
		out.SetMetric(key+"mosaic_backed_pct", r.MosaicBackedPct)
		out.SetMetric(key+"mosaic_copies", float64(r.MosaicCopies))
		out.SetMetric(key+"huge_tlb_entries", float64(r.HugeTLBEntries))
		out.SetMetric(key+"mosaic_tlb_entries", float64(r.MosaicTLBEntries))
	}
	tb := stats.NewTable(
		fmt.Sprintf("Fragmentation vs TLB reach (%d MiB memory, %.0f%% freed, region = free memory)",
			*frames*4/1024, 100**free),
		"Freed in chunks of", "Unusable idx", "Huge-backed", "Compaction copies",
		"Mosaic-backed", "Mosaic copies", "TLB entries (huge)", "TLB entries (Mosaic-4)")
	for _, r := range rows {
		comp := fmt.Sprintf("%d", r.CompactionCopies)
		if r.CompactionCopies < 0 {
			comp = "infeasible"
		}
		tb.AddRow(
			fmt.Sprintf("%d KiB", (1<<r.ChunkOrder)*4),
			fmt.Sprintf("%.2f", r.UnusableIndex),
			fmt.Sprintf("%.1f%%", r.HugeBackedPct),
			comp,
			fmt.Sprintf("%.1f%%", r.MosaicBackedPct),
			r.MosaicCopies,
			r.HugeTLBEntries,
			r.MosaicTLBEntries)
	}
	if *csv {
		fmt.Print(tb.CSV())
	} else {
		fmt.Println(tb.String())
		fmt.Println("Huge pages' reach gains require 2 MiB of contiguous free memory; once the")
		fmt.Println("machine has fragmented, backing collapses and defragmentation bills arrive")
		fmt.Println("(each copy is a full page migration). Mosaic's reach never depended on")
		fmt.Println("contiguity: backing and TLB-entry counts are flat across every row.")
	}
	if err := drv.Finish(out); err != nil {
		fmt.Fprintf(os.Stderr, "frag: %v\n", err)
		os.Exit(1)
	}
}
