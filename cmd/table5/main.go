// Command table5 regenerates Table 5 of the paper: size and latency of the
// tabulation-hash circuit (Figure 4) on an Artix-7 FPGA, plus the 28nm CMOS
// synthesis summary from §4.4, from the calibrated structural circuit model
// in internal/hw.
//
// Usage:
//
//	table5 [-csv] [-json] [-o path] [-cpuprofile path]
package main

import (
	"flag"
	"fmt"
	"os"

	"mosaic"
	"mosaic/internal/results"
	"mosaic/internal/stats"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	drv := results.NewDriver("table5", nil)
	flag.Parse()
	if err := drv.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "table5: %v\n", err)
		os.Exit(1)
	}
	defer drv.Close()
	out := results.New("table5")

	fpga := stats.NewTable(
		"Table 5: tabulation-hash circuit on an Artix-7 FPGA",
		"H", "LUTs", "Registers", "F7 Mux", "F8 Mux", "Latency (ns)", "Fmax (MHz)")
	for _, r := range mosaic.Table5() {
		fpga.AddRow(r.HashOutputs, r.LUTs, r.Registers, r.F7Muxes, r.F8Muxes,
			fmt.Sprintf("%.3f", r.LatencyNs), fmt.Sprintf("%.0f", r.FmaxMHz))
		key := fmt.Sprintf("table5.fpga.h%d.", r.HashOutputs)
		out.SetMetric(key+"luts", float64(r.LUTs))
		out.SetMetric(key+"registers", float64(r.Registers))
		out.SetMetric(key+"latency_ns", r.LatencyNs)
		out.SetMetric(key+"fmax_mhz", r.FmaxMHz)
	}

	asic := stats.NewTable(
		"28nm CMOS synthesis (worst-case corner, §4.4)",
		"H", "Area (KGE)", "Latency (ps)", "Slack (ps)", "Fmax (GHz)")
	for _, r := range mosaic.Table5ASIC() {
		asic.AddRow(r.HashOutputs, fmt.Sprintf("%.3f", r.AreaKGE),
			fmt.Sprintf("%.0f", r.LatencyPs), fmt.Sprintf("%.0f", r.SlackPs),
			fmt.Sprintf("%.2f", r.FmaxGHz))
		key := fmt.Sprintf("table5.asic.h%d.", r.HashOutputs)
		out.SetMetric(key+"area_kge", r.AreaKGE)
		out.SetMetric(key+"latency_ps", r.LatencyPs)
		out.SetMetric(key+"fmax_ghz", r.FmaxGHz)
	}

	if *csv {
		fmt.Print(fpga.CSV())
		fmt.Print(asic.CSV())
	} else {
		fmt.Println(fpga.String())
		fmt.Println(asic.String())
		fmt.Println("Latency is independent of H: probe outputs are selected by muxes off the")
		fmt.Println("critical path, so extra hash functions cost area but not clock rate (§4.4).")
	}
	if err := drv.Finish(out); err != nil {
		fmt.Fprintf(os.Stderr, "table5: %v\n", err)
		os.Exit(1)
	}
}
