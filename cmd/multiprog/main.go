// Command multiprog runs the multiprogramming extension experiment:
// several processes time-share one TLB, with ASID-tagged entries or full
// flushes on context switch, and the harness reports how much interference
// each TLB design suffers relative to solo execution.
//
// Usage:
//
//	multiprog [-workloads graph500,kvstore] [-footprint MiB] [-quantum N]
//	          [-maxrefs N] [-entries N] [-seed N] [-csv]
//	          [-json] [-o path] [-cpuprofile path]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mosaic"
	"mosaic/internal/results"
	"mosaic/internal/stats"
)

func main() {
	workloads := flag.String("workloads", "graph500,kvstore", "comma-separated co-scheduled workloads")
	footprint := flag.Uint64("footprint", 16, "footprint per process in MiB")
	quantum := flag.Uint64("quantum", 50_000, "context-switch quantum in references")
	maxRefs := flag.Uint64("maxrefs", 3_000_000, "captured references per process")
	entries := flag.Int("entries", 256, "shared TLB entries")
	seed := flag.Uint64("seed", 1, "random seed")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	drv := results.NewDriver("multiprog", nil)
	flag.Parse()
	exitOn(drv.Start())
	defer drv.Close()

	names := strings.Split(*workloads, ",")
	base := mosaic.MultiprogramOptions{
		Workloads:      names,
		FootprintBytes: *footprint << 20,
		QuantumRefs:    *quantum,
		MaxRefsPerProc: *maxRefs,
		TLBEntries:     *entries,
		Seed:           *seed,
		Workers:        drv.Workers,
		Progress:       drv.Progress(),
	}

	tagged, refs, err := mosaic.Multiprogram(base)
	exitOn(err)
	flushOpts := base
	flushOpts.FlushOnSwitch = true
	flushed, _, err := mosaic.Multiprogram(flushOpts)
	exitOn(err)

	out := results.New("multiprog")
	out.Config = map[string]any{
		"workloads": names, "footprint_mib": *footprint, "quantum": *quantum,
		"maxrefs": *maxRefs, "entries": *entries, "seed": *seed,
	}
	out.SetMetric("multiprog.refs", float64(refs))
	for i, r := range tagged {
		key := "multiprog." + results.Sanitize(r.Label) + "."
		out.SetMetric(key+"solo.misses", float64(r.SoloMisses))
		out.SetMetric(key+"tagged.misses", float64(r.SharedMisses))
		out.SetMetric(key+"tagged.interference_pct", r.InterferencePct)
		out.SetMetric(key+"flushed.misses", float64(flushed[i].SharedMisses))
	}

	tb := stats.NewTable(
		fmt.Sprintf("Multiprogramming: %s time-sharing a %d-entry TLB (%d refs, %d-ref quanta)",
			strings.Join(names, " + "), *entries, refs, *quantum),
		"Design", "Solo misses", "Shared (tagged)", "Interference",
		"Shared (flushed)", "Flush penalty")
	for i, r := range tagged {
		f := flushed[i]
		flushPen := "n/a"
		if r.SoloMisses > 0 {
			flushPen = fmt.Sprintf("%+.1f%%", 100*(float64(f.SharedMisses)-float64(r.SoloMisses))/float64(r.SoloMisses))
		}
		tb.AddRow(r.Label, r.SoloMisses, r.SharedMisses,
			fmt.Sprintf("%+.1f%%", r.InterferencePct),
			f.SharedMisses, flushPen)
	}
	if *csv {
		fmt.Print(tb.CSV())
	} else {
		fmt.Println(tb.String())
		fmt.Println("Interference = extra misses vs the processes running alone. With ASID")
		fmt.Println("tags, entries survive context switches; with flushes every quantum")
		fmt.Println("restarts cold — and each lost mosaic entry costs arity× the reach,")
		fmt.Println("so high-arity designs feel flushing the most but still miss least.")
	}
	exitOn(drv.Finish(out))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "multiprog: %v\n", err)
		os.Exit(1)
	}
}
