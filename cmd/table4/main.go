// Command table4 regenerates Table 4 of the paper: swap I/O under
// increasing memory oversubscription, comparing the Linux-like baseline
// (two-list LRU + zone watermarks) with mosaic's Horizon LRU.
//
// Usage:
//
//	table4 [-memory MiB] [-runs N] [-maxrefs N] [-seed N] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"mosaic"
	"mosaic/internal/stats"
)

func main() {
	memory := flag.Int("memory", 16, "memory pool size in MiB (paper: 4096)")
	runs := flag.Int("runs", 3, "runs per cell (paper: 5)")
	maxRefs := flag.Uint64("maxrefs", 20_000_000, "reference cap per run (0 = full run)")
	seed := flag.Uint64("seed", 1, "base random seed")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()

	rows, err := mosaic.Table4(mosaic.Table4Options{
		MemoryMiB: *memory,
		Runs:      *runs,
		MaxRefs:   *maxRefs,
		Seed:      *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "table4: %v\n", err)
		os.Exit(1)
	}
	tb := stats.NewTable(
		fmt.Sprintf("Table 4: swap I/O while increasing workload size (%d MiB pool, %d runs)", *memory, *runs),
		"Workload", "Footprint (MiB)", "Linux (K pages)", "Mosaic (K pages)", "Difference (%)")
	for _, r := range rows {
		tb.AddRow(r.Workload,
			fmt.Sprintf("%.0f", r.FootprintMiB),
			fmt.Sprintf("%.2f", r.LinuxKPages),
			fmt.Sprintf("%.2f", r.MosaicKPages),
			fmt.Sprintf("%+.2f", r.DiffPercent))
	}
	if *csv {
		fmt.Print(tb.CSV())
	} else {
		fmt.Println(tb.String())
		fmt.Println("Positive difference = mosaic swaps less (the paper's green cells).")
	}
}
