// Command table4 regenerates Table 4 of the paper: swap I/O under
// increasing memory oversubscription, comparing the Linux-like baseline
// (two-list LRU + zone watermarks) with mosaic's Horizon LRU.
//
// Usage:
//
//	table4 [-memory MiB] [-runs N] [-maxrefs N] [-seed N] [-csv]
//	       [-json] [-o path] [-cpuprofile path]
package main

import (
	"flag"
	"fmt"
	"os"

	"mosaic"
	"mosaic/internal/results"
	"mosaic/internal/stats"
)

func main() {
	memory := flag.Int("memory", 16, "memory pool size in MiB (paper: 4096)")
	runs := flag.Int("runs", 3, "runs per cell (paper: 5)")
	maxRefs := flag.Uint64("maxrefs", 20_000_000, "reference cap per run (0 = full run)")
	seed := flag.Uint64("seed", 1, "base random seed")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	drv := results.NewDriver("table4", nil)
	flag.Parse()
	if err := drv.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "table4: %v\n", err)
		os.Exit(1)
	}
	defer drv.Close()

	rows, err := mosaic.Table4(mosaic.Table4Options{
		MemoryMiB: *memory,
		Runs:      *runs,
		MaxRefs:   *maxRefs,
		Seed:      *seed,
		Workers:   drv.Workers,
		Progress:  drv.Progress(),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "table4: %v\n", err)
		os.Exit(1)
	}
	out := results.New("table4")
	out.Config = map[string]any{
		"memory_mib": *memory, "runs": *runs, "maxrefs": *maxRefs, "seed": *seed,
	}
	for _, r := range rows {
		key := fmt.Sprintf("table4.%s.fp%.0f.", results.Sanitize(r.Workload), r.FootprintMiB)
		out.SetMetric(key+"linux_kpages", r.LinuxKPages)
		out.SetMetric(key+"mosaic_kpages", r.MosaicKPages)
		out.SetMetric(key+"diff_pct", r.DiffPercent)
	}
	tb := stats.NewTable(
		fmt.Sprintf("Table 4: swap I/O while increasing workload size (%d MiB pool, %d runs)", *memory, *runs),
		"Workload", "Footprint (MiB)", "Linux (K pages)", "Mosaic (K pages)", "Difference (%)")
	for _, r := range rows {
		tb.AddRow(r.Workload,
			fmt.Sprintf("%.0f", r.FootprintMiB),
			fmt.Sprintf("%.2f", r.LinuxKPages),
			fmt.Sprintf("%.2f", r.MosaicKPages),
			fmt.Sprintf("%+.2f", r.DiffPercent))
	}
	if *csv {
		fmt.Print(tb.CSV())
	} else {
		fmt.Println(tb.String())
		fmt.Println("Positive difference = mosaic swaps less (the paper's green cells).")
	}
	if err := drv.Finish(out); err != nil {
		fmt.Fprintf(os.Stderr, "table4: %v\n", err)
		os.Exit(1)
	}
}
