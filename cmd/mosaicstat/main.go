// Command mosaicstat inspects the machine-readable experiment outputs the
// cmd/* drivers write with -json (see internal/results).
//
// Usage:
//
//	mosaicstat show results/fig6.json           pretty-print one result
//	mosaicstat diff old.json new.json           per-metric percent deltas
//	mosaicstat diff -changed old.json new.json  only metrics that moved
//	mosaicstat bench BENCH_obs.json             pretty-print benchmark JSON
//	go test -bench . | mosaicstat bench -parse -o BENCH_obs.json
//	mosaicstat watch http://127.0.0.1:7077      live windowed rates (vmstat-style)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"mosaic/internal/results"
	"mosaic/internal/stats"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	var err error
	switch args[0] {
	case "show":
		err = show(args[1:])
	case "diff":
		err = diff(args[1:])
	case "bench":
		err = bench(args[1:])
	case "watch":
		err = watch(args[1:])
	default:
		// Bare file argument: treat as show for convenience.
		if _, statErr := os.Stat(args[0]); statErr == nil {
			err = show(args)
		} else {
			usage()
			os.Exit(2)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mosaicstat: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  mosaicstat show <result.json>
  mosaicstat diff [-changed] <a.json> <b.json>
  mosaicstat bench <bench.json>
  mosaicstat bench -parse [-o out.json]   (go test -bench output on stdin)
  mosaicstat watch [-interval 1s] [-count N] <mosaicd URL | results.json>
`)
}

func show(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("show needs exactly one result file")
	}
	f, err := results.Read(args[0])
	if err != nil {
		return err
	}
	fmt.Print(f.Format())
	return nil
}

func diff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	changed := fs.Bool("changed", false, "only print metrics whose values differ")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff needs exactly two result files")
	}
	a, err := results.Read(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := results.Read(fs.Arg(1))
	if err != nil {
		return err
	}
	rows := results.Diff(a, b)
	if *changed {
		kept := rows[:0]
		for _, r := range rows {
			if !r.InA || !r.InB || r.DeltaPct != 0 {
				kept = append(kept, r)
			}
		}
		rows = kept
	}
	fmt.Print(results.FormatDiff(fs.Arg(0), fs.Arg(1), rows))
	return nil
}

func bench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	parse := fs.Bool("parse", false, "parse `go test -bench` output from stdin into benchmark JSON")
	out := fs.String("o", "BENCH_obs.json", "output path for -parse")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parse {
		benches, err := results.ParseGoBench(os.Stdin)
		if err != nil {
			return err
		}
		if len(benches) == 0 {
			return fmt.Errorf("no benchmark lines on stdin")
		}
		data, err := json.MarshalIndent(results.BenchFile{
			SchemaVersion: results.SchemaVersion,
			Benchmarks:    benches,
		}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", *out, len(benches))
		return nil
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("bench needs exactly one benchmark file")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	var f results.BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return err
	}
	tb := stats.NewTable(fmt.Sprintf("%s (schema v%d)", fs.Arg(0), f.SchemaVersion),
		"Benchmark", "Iterations", "ns/op", "B/op", "allocs/op", "custom")
	for _, r := range f.Benchmarks {
		tb.AddRow(r.Name, r.N, fmt.Sprintf("%.2f", r.NsPerOp),
			fmt.Sprintf("%.0f", r.BytesPerOp), fmt.Sprintf("%.0f", r.AllocsPerOp),
			customMetrics(r))
	}
	fmt.Println(tb.String())
	if line := replayThroughput(f.Benchmarks); line != "" {
		fmt.Println(line)
	}
	if line := generationThroughput(f.Benchmarks); line != "" {
		fmt.Println(line)
	}
	return nil
}

// customMetrics renders a benchmark's ReportMetric columns, sorted by unit.
func customMetrics(r results.BenchResult) string {
	if len(r.Metrics) == 0 {
		return ""
	}
	units := make([]string, 0, len(r.Metrics))
	for u := range r.Metrics {
		units = append(units, u)
	}
	sort.Strings(units)
	parts := make([]string, 0, len(units))
	for _, u := range units {
		parts = append(parts, fmt.Sprintf("%.1f %s", r.Metrics[u], u))
	}
	return strings.Join(parts, ", ")
}

// benchRate finds a benchmark by name (exact, or carrying a -cpu suffix)
// and returns its Mrefs/s metric.
func benchRate(benches []results.BenchResult, name string) (float64, bool) {
	for _, r := range benches {
		if r.Name == name || strings.HasPrefix(r.Name, name+"-") {
			return r.Metric("Mrefs/s")
		}
	}
	return 0, false
}

// replayThroughput summarizes the batched-vs-scalar replay engine headline
// when both harness benchmarks are present.
func replayThroughput(benches []results.BenchResult) string {
	scalar, ok1 := benchRate(benches, "BenchmarkRunLimited")
	batch, ok2 := benchRate(benches, "BenchmarkRunBatch")
	if !ok1 || !ok2 || scalar <= 0 {
		return ""
	}
	line := fmt.Sprintf("replay engine: batch %.0f Mrefs/s vs scalar %.0f Mrefs/s (%.1f×)",
		batch, scalar, batch/scalar)
	if decode, ok := benchRate(benches, "BenchmarkBatchDecode"); ok {
		line += fmt.Sprintf(", v2 decode %.0f Mrefs/s", decode)
	}
	return line
}

// generationThroughput lines the batch-native generator up against the
// batched replay harness: when generation (GUPS on the batch leg) keeps pace
// with replay dispatch, a sweep's wall clock is bound by the simulator, not
// by producing references.
func generationThroughput(benches []results.BenchResult) string {
	gen, ok := benchRate(benches, "BenchmarkGenerateGUPSBatch")
	if !ok {
		return ""
	}
	line := fmt.Sprintf("generation: gups batch %.0f Mrefs/s", gen)
	if scalar, ok := benchRate(benches, "BenchmarkGenerateGUPSScalar"); ok && scalar > 0 {
		line += fmt.Sprintf(" vs scalar %.0f Mrefs/s (%.1f×)", scalar, gen/scalar)
	}
	if replay, ok := benchRate(benches, "BenchmarkRunBatch"); ok && replay > 0 {
		line += fmt.Sprintf("; replay dispatch %.0f Mrefs/s (gen/replay %.2f)", replay, gen/replay)
	}
	return line
}
