package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mosaic/internal/results"
)

// fakeSource replays a scripted sequence of metric maps.
type fakeSource struct {
	seq []map[string]float64
	i   int
}

func (s *fakeSource) describe() string { return "fake" }

func (s *fakeSource) fetch() (map[string]float64, error) {
	if s.i >= len(s.seq) {
		return s.seq[len(s.seq)-1], nil
	}
	m := s.seq[s.i]
	s.i++
	return m, nil
}

func liveMetrics(refs, vanHits, mosHits, swap float64) map[string]float64 {
	return map[string]float64{
		"sim.refs.total":            refs,
		"tlb.vanilla.live.hits":     vanHits,
		"tlb.vanilla.live.lookups":  refs,
		"tlb.mosaic_4.live.hits":    mosHits,
		"tlb.mosaic_4.live.lookups": refs,
		"swap.io.total":             swap,
	}
}

// TestWatchRowDeltas: rates and hit percentages are windowed, not
// cumulative — a window where mosaic hits everything shows 100% even
// though its cumulative rate is lower.
func TestWatchRowDeltas(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	prev := watchSample{when: base, m: liveMetrics(1000, 500, 600, 10)}
	cur := watchSample{when: base.Add(2 * time.Second), m: liveMetrics(3000, 1500, 2600, 50)}
	ds := watchDesigns(cur.m)
	if want := []string{"mosaic_4", "vanilla"}; fmt.Sprint(ds) != fmt.Sprint(want) {
		t.Fatalf("watchDesigns = %v, want %v", ds, want)
	}
	cells := watchRow(prev, cur, ds)
	want := []string{"3000", "1.0k", "100.0", "50.0", "20"}
	if fmt.Sprint(cells) != fmt.Sprint(want) {
		t.Errorf("watchRow = %v, want %v", cells, want)
	}
}

// TestWatchRowFinalized: after FinalizeMetrics the live gauges give way to
// the finalized hit/miss counters and the same row logic still works.
func TestWatchRowFinalized(t *testing.T) {
	base := time.Now()
	mk := func(hit, miss float64) map[string]float64 {
		return map[string]float64{
			"vm.access":        hit + miss,
			"tlb.vanilla.hit":  hit,
			"tlb.vanilla.miss": miss,
		}
	}
	prev := watchSample{when: base, m: mk(80, 20)}
	cur := watchSample{when: base.Add(time.Second), m: mk(170, 30)}
	ds := watchDesigns(cur.m)
	if len(ds) != 1 || ds[0] != "vanilla" {
		t.Fatalf("watchDesigns = %v, want [vanilla]", ds)
	}
	cells := watchRow(prev, cur, ds)
	// window: 100 refs, 90 hits → 90.0%; no swap metric → idle "-"… swap
	// delta 0 over 1s renders as rate 0.
	want := []string{"200", "100", "90.0", "0"}
	if fmt.Sprint(cells) != fmt.Sprint(want) {
		t.Errorf("watchRow = %v, want %v", cells, want)
	}
}

// TestWatchIdleWindow: an idle window renders "-" hit rates, not NaN or
// divide-by-zero garbage.
func TestWatchIdleWindow(t *testing.T) {
	base := time.Now()
	m := liveMetrics(1000, 500, 600, 10)
	prev := watchSample{when: base, m: m}
	cur := watchSample{when: base.Add(time.Second), m: m}
	cells := watchRow(prev, cur, watchDesigns(m))
	want := []string{"1000", "0", "-", "-", "0"}
	if fmt.Sprint(cells) != fmt.Sprint(want) {
		t.Errorf("watchRow = %v, want %v", cells, want)
	}
}

// TestRunWatchCount: the loop renders a header, waits through empty
// fetches, emits exactly -count rows, and stops.
func TestRunWatchCount(t *testing.T) {
	src := &fakeSource{seq: []map[string]float64{
		nil, // daemon up, nothing yet
		liveMetrics(1000, 500, 600, 0),
		liveMetrics(2000, 1200, 1500, 0),
		liveMetrics(3000, 2000, 2500, 0),
	}}
	var buf bytes.Buffer
	if err := runWatch(&buf, src, time.Millisecond, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// watching… / (waiting for data) / header / two rows
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "waiting for data") {
		t.Errorf("line 2 = %q, want waiting notice", lines[1])
	}
	for _, col := range []string{"refs", "refs/s", "vanilla_hit%", "mosaic_4_hit%", "swap_io/s"} {
		if !strings.Contains(lines[2], col) {
			t.Errorf("header %q missing column %q", lines[2], col)
		}
	}
	if !strings.Contains(lines[3], "2000") || !strings.Contains(lines[4], "3000") {
		t.Errorf("rows did not track the ref clock:\n%s", out)
	}
}

// TestWatchHTTPSource: a bare base URL follows the newest session; a
// non-200 results answer reads as "waiting", not an error.
func TestWatchHTTPSource(t *testing.T) {
	published := false
	mux := http.NewServeMux()
	mux.HandleFunc("GET /sessions", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `[{"id":1},{"id":2}]`)
	})
	mux.HandleFunc("GET /sessions/2/results.json", func(w http.ResponseWriter, r *http.Request) {
		if !published {
			http.Error(w, "not yet", http.StatusConflict)
			return
		}
		fmt.Fprint(w, `{"schema_version":1,"experiment":"mosaicd-session","metrics":{"sim.refs.total":4096}}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	src := newWatchSource(ts.URL)
	if m, err := src.fetch(); err != nil || m != nil {
		t.Fatalf("unpublished newest session: fetch = %v, %v; want nil, nil", m, err)
	}
	published = true
	m, err := src.fetch()
	if err != nil {
		t.Fatal(err)
	}
	if m["sim.refs.total"] != 4096 {
		t.Errorf("followed session metrics = %v, want sim.refs.total 4096", m)
	}

	// A full URL is fetched verbatim.
	direct := newWatchSource(ts.URL + "/sessions/2/results.json")
	if m, err := direct.fetch(); err != nil || m["sim.refs.total"] != 4096 {
		t.Errorf("direct fetch = %v, %v", m, err)
	}
}

// TestWatchFileSource: a results file is pollable; a missing file waits.
func TestWatchFileSource(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	src := newWatchSource(path)
	if m, err := src.fetch(); err != nil || m != nil {
		t.Fatalf("missing file: fetch = %v, %v; want nil, nil", m, err)
	}
	f := results.New("fig6")
	f.SetMetric("vm.access", 123)
	if err := results.Write(path, f); err != nil {
		t.Fatal(err)
	}
	m, err := src.fetch()
	if err != nil {
		t.Fatal(err)
	}
	if m["vm.access"] != 123 {
		t.Errorf("file metrics = %v, want vm.access 123", m)
	}
}
