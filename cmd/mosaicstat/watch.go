package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"mosaic/internal/results"
)

// watch follows a running simulation and renders windowed deltas — refs/s,
// per-design TLB hit rate, swap I/O rate — vmstat-style, one line per
// polling interval. The target is either a mosaicd base URL (the newest
// session is followed as sessions come and go), a specific results URL
// under the daemon, or a results JSON file being rewritten by a driver.
//
//	mosaicstat watch http://127.0.0.1:7077
//	mosaicstat watch http://127.0.0.1:7077/sessions/3/results.json
//	mosaicstat watch -interval 500ms -count 20 results/fig6.json
func watch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	interval := fs.Duration("interval", time.Second, "polling interval")
	count := fs.Int("count", 0, "stop after this many rows (0 = run until interrupted)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("watch needs exactly one target (mosaicd URL or results file)")
	}
	return runWatch(os.Stdout, newWatchSource(fs.Arg(0)), *interval, *count)
}

// watchSource is one pollable metrics origin.
type watchSource interface {
	// fetch returns the current final-metrics map. A nil map with a nil
	// error means "nothing to report yet" (daemon with no sessions, file
	// not written yet) — the watcher waits instead of failing.
	fetch() (map[string]float64, error)
	describe() string
}

// newWatchSource classifies the target: URLs poll a daemon, anything else
// polls a results file on disk.
func newWatchSource(target string) watchSource {
	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
		return &httpSource{target: target}
	}
	return fileSource{path: target}
}

// fileSource re-reads a results file each poll, so a driver that rewrites
// its -json output periodically can be watched like a live session.
type fileSource struct{ path string }

func (s fileSource) describe() string { return s.path }

func (s fileSource) fetch() (map[string]float64, error) {
	f, err := results.Read(s.path)
	if err != nil {
		return nil, nil // not written yet (or mid-rewrite); keep waiting
	}
	return metricsMap(f), nil
}

// httpSource polls a mosaicd. A bare base URL follows the newest session
// (re-resolved every poll, so a freshly posted session takes over the
// watch); a URL with a path is fetched verbatim as a results file.
type httpSource struct {
	target string
	client http.Client
}

func (s *httpSource) describe() string { return s.target }

func (s *httpSource) fetch() (map[string]float64, error) {
	url := strings.TrimSuffix(s.target, "/")
	rest := strings.TrimPrefix(strings.TrimPrefix(url, "https://"), "http://")
	if !strings.Contains(rest, "/") {
		// Bare daemon base: follow the newest session.
		data, ok, err := s.get(url + "/sessions")
		if err != nil || !ok {
			return nil, err
		}
		var infos []struct {
			ID int `json:"id"`
		}
		if err := json.Unmarshal(data, &infos); err != nil {
			return nil, err
		}
		if len(infos) == 0 {
			return nil, nil // daemon is up, no sessions yet
		}
		latest := infos[0].ID
		for _, inf := range infos {
			if inf.ID > latest {
				latest = inf.ID
			}
		}
		url = fmt.Sprintf("%s/sessions/%d/results.json", url, latest)
	}
	data, ok, err := s.get(url)
	if err != nil || !ok {
		// Non-200 (queued session not yet published, failed run) reads as
		// "nothing to report yet"; transport errors (daemon gone) do fail.
		return nil, err
	}
	f, err := results.Decode(data, url)
	if err != nil {
		return nil, err
	}
	return metricsMap(f), nil
}

// get fetches url; ok=false flags a non-200 answer.
func (s *httpSource) get(url string) ([]byte, bool, error) {
	resp, err := s.client.Get(url)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	return data, resp.StatusCode == http.StatusOK, nil
}

func metricsMap(f *results.File) map[string]float64 {
	m := make(map[string]float64, len(f.Metrics))
	for name, v := range f.Metrics {
		m[name] = float64(v)
	}
	return m
}

// watchSample is one poll: when it was taken and what the metrics said.
type watchSample struct {
	when time.Time
	m    map[string]float64
}

// totalRefs extracts the reference clock: the live sim.refs.total gauge
// when the session publishes one, the vm.access counter otherwise.
func totalRefs(m map[string]float64) float64 {
	if v, ok := m["sim.refs.total"]; ok {
		return v
	}
	return m["vm.access"]
}

// watchDesigns discovers the TLB design points present in a metrics map,
// sorted: live gauges (tlb.<d>.live.lookups) while running, finalized
// counters (tlb.<d>.hit) afterwards.
func watchDesigns(m map[string]float64) []string {
	set := map[string]bool{}
	for name := range m {
		rest, ok := strings.CutPrefix(name, "tlb.")
		if !ok {
			continue
		}
		if d, ok := strings.CutSuffix(rest, ".live.lookups"); ok {
			set[d] = true
		} else if d, ok := strings.CutSuffix(rest, ".hit"); ok && !strings.Contains(d, ".") {
			set[d] = true
		}
	}
	ds := make([]string, 0, len(set))
	for d := range set {
		ds = append(ds, d)
	}
	sort.Strings(ds)
	return ds
}

// designCounts returns a design's cumulative hits and lookups.
func designCounts(m map[string]float64, d string) (hits, lookups float64) {
	if v, ok := m["tlb."+d+".live.hits"]; ok {
		return v, m["tlb."+d+".live.lookups"]
	}
	h := m["tlb."+d+".hit"]
	return h, h + m["tlb."+d+".miss"]
}

// watchRow renders one interval's windowed deltas. Rates use the wall
// clock between the two samples; hit rates are within-window (delta hits
// over delta lookups), so a phase change shows up immediately instead of
// being averaged into the whole run.
func watchRow(prev, cur watchSample, ds []string) []string {
	dt := cur.when.Sub(prev.when).Seconds()
	refs := totalRefs(cur.m)
	cells := []string{
		fmt.Sprintf("%.0f", refs),
		rateCell(refs-totalRefs(prev.m), dt),
	}
	for _, d := range ds {
		ph, pl := designCounts(prev.m, d)
		ch, cl := designCounts(cur.m, d)
		cells = append(cells, pctCell(ch-ph, cl-pl))
	}
	cells = append(cells, rateCell(cur.m["swap.io.total"]-prev.m["swap.io.total"], dt))
	return cells
}

// rateCell renders delta/dt compactly (12.3k, 4.5M).
func rateCell(delta, dt float64) string {
	if dt <= 0 || delta < 0 {
		return "-"
	}
	r := delta / dt
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.1fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk", r/1e3)
	default:
		return fmt.Sprintf("%.0f", r)
	}
}

// pctCell renders a windowed hit percentage, "-" for an idle window.
func pctCell(hits, lookups float64) string {
	if lookups <= 0 || math.IsNaN(hits) {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*hits/lookups)
}

// runWatch is the poll-render loop, split from flag parsing so tests can
// drive it with a fake source and a buffer.
func runWatch(w io.Writer, src watchSource, interval time.Duration, count int) error {
	fmt.Fprintf(w, "watching %s every %v\n", src.describe(), interval)
	var prev *watchSample
	var ds []string
	rows := 0
	for tick := 0; ; tick++ {
		if tick > 0 {
			time.Sleep(interval)
		}
		m, err := src.fetch()
		if err != nil {
			return err
		}
		if m == nil {
			fmt.Fprintln(w, "(waiting for data)")
			continue
		}
		cur := watchSample{when: time.Now(), m: m}
		if prev == nil {
			// First sample is the baseline; also fixes the column set so
			// rows stay aligned even as the session finalizes.
			ds = watchDesigns(m)
			printWatchHeader(w, ds)
		} else {
			printCells(w, watchRow(*prev, cur, ds))
			rows++
			if count > 0 && rows >= count {
				return nil
			}
		}
		prev = &cur
		if rows > 0 && rows%20 == 0 {
			printWatchHeader(w, ds)
		}
	}
}

const watchColWidth = 12

func printWatchHeader(w io.Writer, ds []string) {
	cells := []string{"refs", "refs/s"}
	for _, d := range ds {
		cells = append(cells, d+"_hit%")
	}
	cells = append(cells, "swap_io/s")
	printCells(w, cells)
}

func printCells(w io.Writer, cells []string) {
	var b strings.Builder
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%*s", watchColWidth, c)
	}
	fmt.Fprintln(w, b.String())
}
