// Command table3 regenerates Table 3 of the paper: memory utilization at
// the first associativity conflict (1−δ) and the steady-state utilization
// under the mosaic page allocator, plus the Linux baseline's swap-onset
// utilization and the standalone iceberg δ measurement (§4.2).
//
// Usage:
//
//	table3 [-memory MiB] [-runs N] [-maxrefs N] [-seed N] [-csv] [-delta]
//	       [-json] [-o path] [-cpuprofile path]
package main

import (
	"flag"
	"fmt"
	"os"

	"mosaic"
	"mosaic/internal/results"
	"mosaic/internal/stats"
)

func main() {
	memory := flag.Int("memory", 16, "mosaic memory pool size in MiB (paper: 4096)")
	runs := flag.Int("runs", 3, "runs per cell (paper: 10)")
	maxRefs := flag.Uint64("maxrefs", 20_000_000, "reference cap per run (0 = full run)")
	seed := flag.Uint64("seed", 1, "base random seed")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	delta := flag.Bool("delta", false, "also run the standalone iceberg δ measurement")
	drv := results.NewDriver("table3", nil)
	flag.Parse()
	if err := drv.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "table3: %v\n", err)
		os.Exit(1)
	}
	defer drv.Close()

	rows, err := mosaic.Table3(mosaic.Table3Options{
		MemoryMiB: *memory,
		Runs:      *runs,
		MaxRefs:   *maxRefs,
		Seed:      *seed,
		Workers:   drv.Workers,
		Progress:  drv.Progress(),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "table3: %v\n", err)
		os.Exit(1)
	}
	out := results.New("table3")
	out.Config = map[string]any{
		"memory_mib": *memory, "runs": *runs, "maxrefs": *maxRefs, "seed": *seed, "delta": *delta,
	}
	for _, r := range rows {
		key := fmt.Sprintf("table3.%s.fp%.0f.", results.Sanitize(r.Workload), r.FootprintMiB)
		out.SetMetric(key+"first_conflict", r.FirstConflict)
		out.SetMetric(key+"first_conflict_sd", r.FirstConflictSD)
		out.SetMetric(key+"steady", r.Steady)
		out.SetMetric(key+"steady_sd", r.SteadySD)
	}
	tb := stats.NewTable(
		fmt.Sprintf("Table 3: memory utilization under mosaic allocation (%d MiB pool, %d runs)", *memory, *runs),
		"Workload", "Footprint (MiB)", "First conflict (1-δ)", "Steady-state utilization")
	for _, r := range rows {
		tb.AddRow(r.Workload,
			fmt.Sprintf("%.0f", r.FootprintMiB),
			fmt.Sprintf("%.2f%% ±%.2f", 100*r.FirstConflict, 100*r.FirstConflictSD),
			fmt.Sprintf("%.2f%% ±%.2f", 100*r.Steady, 100*r.SteadySD))
	}
	if *csv {
		fmt.Print(tb.CSV())
	} else {
		fmt.Println(tb.String())
	}

	drv.Stepf("table3: linux swap-onset baseline")
	onset, err := mosaic.LinuxSwapOnset(*memory, "btree", *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "table3: %v\n", err)
		os.Exit(1)
	}
	out.SetMetric("table3.linux.swap_onset", onset)
	fmt.Printf("Linux (vanilla) baseline begins swapping at %.2f%% utilization (paper: ≈99.2%%).\n\n", 100*onset)

	if *delta {
		drv.Stepf("table3: standalone iceberg delta")
		res, err := mosaic.IcebergDelta(mosaic.IcebergDeltaOptions{Seed: *seed, Workers: drv.Workers})
		if err != nil {
			fmt.Fprintf(os.Stderr, "table3: %v\n", err)
			os.Exit(1)
		}
		out.SetMetric("table3.iceberg.delta.mean", res.Mean)
		out.SetMetric("table3.iceberg.delta.sd", res.SD)
		out.SetMetric("table3.iceberg.delta.min", res.Min)
		out.SetMetric("table3.iceberg.delta.max", res.Max)
		fmt.Printf("Standalone iceberg δ: first conflict at %.2f%% ±%.2f load (min %.2f%%, max %.2f%%, %d trials; paper: ≈98.03%%).\n",
			100*res.Mean, 100*res.SD, 100*res.Min, 100*res.Max, res.Trials)
	}
	if err := drv.Finish(out); err != nil {
		fmt.Fprintf(os.Stderr, "table3: %v\n", err)
		os.Exit(1)
	}
}
