// Command fig6 regenerates Figure 6 of the paper: TLB misses for the four
// workloads across TLB associativities (direct-mapped … fully associative)
// and mosaic arities (4 … 64), against the vanilla baseline.
//
// The paper's absolute counts come from multi-day gem5 full-system runs at
// 1–8 GiB footprints; this harness replays the same workload algorithms at
// footprints scaled to keep the footprint/TLB-reach ratios in the paper's
// regime (see EXPERIMENTS.md). Use -footprint/-maxrefs/-entries to rescale,
// and -maxrefs 0 for full workload runs.
//
// Usage:
//
//	fig6 [-workload all|graph500|btree|gups|xsbench] [-entries N]
//	     [-footprint MiB] [-maxrefs N] [-seed N] [-csv] [-describe]
//	     [-json] [-o path] [-sample N] [-cpuprofile path]
package main

import (
	"flag"
	"fmt"
	"os"

	"mosaic"
	"mosaic/internal/core"
	"mosaic/internal/results"
	"mosaic/internal/stats"
	"mosaic/internal/sweep"
	"mosaic/internal/tlb"
	"mosaic/internal/workloads"
)

// defaultFootprintsMiB scales Table 2's workload footprints (1010, 2618,
// 8207, 1012 MiB against a 4 MiB-reach TLB) down to the harness TLB.
var defaultFootprintsMiB = map[string]uint64{
	"graph500": 32,
	"btree":    80,
	"gups":     128,
	"xsbench":  32,
}

func main() {
	workload := flag.String("workload", "all", "workload to run (all, graph500, btree, gups, xsbench)")
	entries := flag.Int("entries", 256, "TLB entries (the paper's Table 1a uses 1024; 256 keeps footprints simulation-sized)")
	footprint := flag.Uint64("footprint", 0, "workload footprint in MiB (0 = per-workload default)")
	maxRefs := flag.Uint64("maxrefs", 20_000_000, "references simulated per associativity point (0 = full run)")
	seed := flag.Uint64("seed", 1, "random seed")
	colt := flag.Bool("colt", false, "include a CoLT-4 coalescing baseline (§5.2)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	describe := flag.Bool("describe", false, "print the simulated platform and workload descriptions (Tables 1a/2 analogues) and exit")
	bitsFlag := flag.Bool("bits", false, "print the §3.1 entry-storage/reach accounting and exit")
	sample := flag.Uint64("sample", 65536, "sampling cadence in references for the JSON time series (0 = no sampling)")
	drv := results.NewDriver("fig6", nil)
	flag.Parse()

	if *describe {
		printPlatform(*entries)
		printWorkloads(*seed)
		return
	}
	if *bitsFlag {
		printBits(*entries)
		return
	}
	if err := drv.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "fig6: %v\n", err)
		os.Exit(1)
	}
	defer drv.Close()

	names := workloads.Names()
	if *workload != "all" {
		names = []string{*workload}
	}
	out := results.New("fig6")
	out.Config = map[string]any{
		"workloads": names,
		"entries":   *entries,
		"footprint": *footprint,
		"maxrefs":   *maxRefs,
		"seed":      *seed,
		"colt":      *colt,
		"sample":    *sample,
	}
	// Per-workload sampled snapshots merge in workload order, so the
	// obs.* aggregate below is identical at any -workers setting.
	merger := sweep.NewMerger()
	for i, name := range names {
		fp := *footprint
		if fp == 0 {
			fp = defaultFootprintsMiB[name]
		}
		opts := mosaic.Figure6Options{
			Workload:       name,
			FootprintBytes: fp << 20,
			MaxRefs:        *maxRefs,
			TLBEntries:     *entries,
			Seed:           *seed,
			Workers:        drv.Workers,
			Progress:       drv.Progress(),
		}
		if *colt {
			opts.Coalesce = []int{4}
		}
		if drv.WantJSON() {
			opts.SampleEvery = *sample
		}
		res, err := mosaic.Figure6(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig6: %v\n", err)
			os.Exit(1)
		}
		merger.Put(i, res.Metrics)
		collect(out, res)
		render(res, fp, *csv)
	}
	if drv.WantJSON() && *sample > 0 {
		out.AddSnapshot("obs", merger.Merged())
	}
	if err := drv.Finish(out); err != nil {
		fmt.Fprintf(os.Stderr, "fig6: %v\n", err)
		os.Exit(1)
	}
}

// collect records one sub-figure into the JSON result: per-cell miss
// counts under fig6.<workload>.<design>.w<ways>.misses (the aggregates
// behind the rendered table), plus the sampled time series and events
// from the fully-associative point.
func collect(out *results.File, res mosaic.Figure6Result) {
	wl := results.Sanitize(res.Workload)
	out.SetMetric("fig6."+wl+".refs", float64(res.Refs))
	for _, c := range res.Cells {
		key := fmt.Sprintf("fig6.%s.%s.w%d.misses", wl, results.Sanitize(c.Label), c.Ways)
		out.SetMetric(key, float64(c.Stats.Misses))
	}
	for _, s := range res.Series {
		vals := make([]results.Number, len(s.Values))
		for i, v := range s.Values {
			vals[i] = results.Number(v)
		}
		out.Series = append(out.Series, results.Series{
			Name:   wl + "." + s.Name,
			Refs:   s.Refs,
			Values: vals,
		})
	}
	for _, e := range res.Events {
		if e.Scope == "" {
			e.Scope = res.Workload
		}
		out.Events = append(out.Events, e)
	}
}

func render(res mosaic.Figure6Result, footprintMiB uint64, csv bool) {
	// Columns per associativity, rows per design, as in the figure.
	wayLabels := map[int]string{}
	var ways []int
	var designs []string
	seenDesign := map[string]bool{}
	for _, c := range res.Cells {
		if _, ok := wayLabels[c.Ways]; !ok {
			ways = append(ways, c.Ways)
			switch c.Ways {
			case 1:
				wayLabels[c.Ways] = "Direct"
			default:
				wayLabels[c.Ways] = fmt.Sprintf("%d-Way", c.Ways)
			}
		}
		if !seenDesign[c.Label] {
			seenDesign[c.Label] = true
			designs = append(designs, c.Label)
		}
	}
	if len(ways) > 0 {
		wayLabels[ways[len(ways)-1]] = "Full"
	}
	headers := []string{"Design"}
	for _, w := range ways {
		headers = append(headers, wayLabels[w]+" misses")
	}
	headers = append(headers, "vs Vanilla (Full)")
	title := fmt.Sprintf("Figure 6 (%s): TLB misses, %d-entry TLB, %d MiB footprint, %d refs",
		res.Workload, resEntries(res), footprintMiB, res.Refs)
	tb := stats.NewTable(title, headers...)
	vanillaFull, _ := res.MissesFor(ways[len(ways)-1], "Vanilla")
	for _, d := range designs {
		row := []any{d}
		for _, w := range ways {
			m, _ := res.MissesFor(w, d)
			row = append(row, m)
		}
		mFull, _ := res.MissesFor(ways[len(ways)-1], d)
		if vanillaFull > 0 {
			row = append(row, fmt.Sprintf("%+.1f%%", 100*(1-float64(mFull)/float64(vanillaFull))))
		} else {
			row = append(row, "n/a")
		}
		tb.AddRow(row...)
	}
	if csv {
		fmt.Print(tb.CSV())
	} else {
		fmt.Println(tb.String())
	}
}

func resEntries(res mosaic.Figure6Result) int {
	if len(res.Cells) == 0 {
		return 0
	}
	// All cells share the entry count; any spec's geometry would do, but
	// Figure6Result carries stats only — infer from the largest ways value,
	// which equals the entry count for the fully-associative point.
	max := 0
	for _, c := range res.Cells {
		if c.Ways > max {
			max = c.Ways
		}
	}
	return max
}

func printPlatform(entries int) {
	tb := stats.NewTable("Simulated platform (Table 1a analogue)", "Component", "Configuration")
	tb.AddRow("CPU", "trace-driven, one data reference per access (TimingSimpleCPU analogue)")
	tb.AddRow("Address sizes", "36-bit VPNs and PFNs; 4 KiB base pages")
	tb.AddRow("L1 DTLB", fmt.Sprintf("unified, %d entries, associativity swept direct→full", entries))
	tb.AddRow("Mosaic geometry", "frontyard 56, backyard 8, d=6 choices, h=104, 7-bit CPFNs")
	tb.AddRow("L1d cache", "64 KiB 2-way (optional; -describe shows defaults)")
	tb.AddRow("L2 cache", "2 MiB 8-way")
	tb.AddRow("L3 cache", "16 MiB 16-way")
	tb.AddRow("OS", "internal/vm: demand paging, iceberg allocator, Horizon LRU")
	fmt.Println(tb.String())
}

func printWorkloads(seed uint64) {
	tb := stats.NewTable("Workloads (Table 2 analogue)", "Workload", "Description", "Default footprint")
	descr := map[string]string{
		"graph500": "Kronecker graph generation, CSR construction, BFS (seq-csr)",
		"btree":    "B+ tree index: bulk load + random point lookups",
		"gups":     "HPCC RandomAccess: uniform random read-modify-writes",
		"xsbench":  "Monte Carlo neutron transport cross-section lookups",
	}
	for _, name := range workloads.Names() {
		fp := defaultFootprintsMiB[name]
		w, err := mosaic.NewWorkload(name, fp<<20, seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig6: %v\n", err)
			os.Exit(1)
		}
		tb.AddRow(name, descr[name], fmt.Sprintf("%d MiB (%d MiB allocated)", fp, w.FootprintBytes()>>20))
	}
	fmt.Println(tb.String())
}

func printBits(entries int) {
	g := tlb.Geometry{Entries: entries, Ways: 8}
	tb := stats.NewTable(
		fmt.Sprintf("Entry storage vs reach (§3.1 analysis, %d-entry 8-way TLB, 36-bit VPN/PFN)", entries),
		"Design", "Entry bits", "Payload KiB", "Reach (MiB)", "Reach bytes/bit", "Entry vs vanilla")
	for _, r := range tlb.BitsTable(g, []int{4, 8, 16, 32, 64}, core.DefaultGeometry, tlb.BitsConfig{}) {
		vs := "—"
		if r.Design != "Vanilla" {
			vs = fmt.Sprintf("%+.1f%%", r.VsVanillaPct)
		}
		tb.AddRow(r.Design, r.EntryBits,
			fmt.Sprintf("%.1f", r.TotalKiB),
			fmt.Sprintf("%.0f", r.ReachMiB),
			fmt.Sprintf("%.0f", r.ReachPerBit), vs)
	}
	fmt.Println(tb.String())
	fmt.Println("A Mosaic-4 entry is smaller than a vanilla entry (28-bit ToC vs 36-bit PFN)")
	fmt.Println("while covering 4x the memory; larger arities trade wider entries for reach.")
}
