// Command ablate runs the design-choice ablations DESIGN.md calls out:
//
//	-sweep=choices   backyard choices d ∈ {1,2,4,6,8} vs first-conflict
//	                 utilization and CPFN width
//	-sweep=split     frontyard/backyard split of the 64-frame bucket
//	-sweep=hash      placement-hash quality (xxhash, tabulation, weak)
//	-sweep=eviction  Horizon LRU vs naive candidate-LRU vs Linux baseline
//	-sweep=timestamps exact access timestamps vs the prototype's
//	                 access-bit scan-daemon emulation (§3.2)
//	-sweep=all       everything
//
// Usage:
//
//	ablate [-sweep=all] [-frames N] [-trials N] [-seed N] [-csv]
//	       [-json] [-o path] [-cpuprofile path]
package main

import (
	"flag"
	"fmt"
	"os"

	"mosaic"
	"mosaic/internal/results"
	"mosaic/internal/stats"
)

// out accumulates the machine-readable twin of the printed tables.
var out = results.New("ablate")

func main() {
	sweep := flag.String("sweep", "all", "which ablation to run (choices, split, hash, eviction, all)")
	frames := flag.Int("frames", 1<<15, "physical frames for the utilization sweeps")
	trials := flag.Int("trials", 5, "trials per point")
	seed := flag.Uint64("seed", 1, "base random seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	drv := results.NewDriver("ablate", nil)
	flag.Parse()
	exitOn(drv.Start())
	defer drv.Close()
	out.Config = map[string]any{
		"sweep": *sweep, "frames": *frames, "trials": *trials, "seed": *seed,
	}

	run := func(name string) bool { return *sweep == "all" || *sweep == name }
	any := false

	if run("choices") {
		any = true
		drv.Stepf("ablate: sweeping backyard choices")
		rows, err := mosaic.AblateChoices(nil, *frames, *trials, *seed, drv.Workers)
		exitOn(err)
		record("choices", rows)
		render(*csv, "Ablation: backyard choices d (f=56, b=8 fixed)", rows)
	}
	if run("split") {
		any = true
		drv.Stepf("ablate: sweeping frontyard/backyard split")
		rows, err := mosaic.AblateSplit(nil, *frames, *trials, *seed, drv.Workers)
		exitOn(err)
		record("split", rows)
		render(*csv, "Ablation: frontyard/backyard split (d=6 fixed)", rows)
	}
	if run("hash") {
		any = true
		drv.Stepf("ablate: sweeping placement-hash family")
		rows, err := mosaic.AblateHash(*frames, *trials, *seed, drv.Workers)
		exitOn(err)
		record("hash", rows)
		render(*csv, "Ablation: placement-hash family (default geometry)", rows)
	}
	if run("eviction") {
		any = true
		drv.Stepf("ablate: comparing eviction policies")
		rows, err := mosaic.AblateEviction("graph500", 16, nil, 0, *seed, drv.Workers)
		exitOn(err)
		tb := stats.NewTable("Ablation: eviction policy (graph500, 16 MiB pool)",
			"Footprint (MiB)", "Horizon LRU (K I/O)", "Naive cand-LRU (K I/O)", "Linux (K I/O)", "Horizon vs naive (%)")
		for _, r := range rows {
			tb.AddRow(fmt.Sprintf("%.0f", r.FootprintMiB),
				fmt.Sprintf("%.2f", r.HorizonKIO),
				fmt.Sprintf("%.2f", r.NaiveKIO),
				fmt.Sprintf("%.2f", r.LinuxKIO),
				fmt.Sprintf("%+.2f", r.HorizonVsNaive))
			key := fmt.Sprintf("ablate.eviction.fp%.0f.", r.FootprintMiB)
			out.SetMetric(key+"horizon_kio", r.HorizonKIO)
			out.SetMetric(key+"naive_kio", r.NaiveKIO)
			out.SetMetric(key+"linux_kio", r.LinuxKIO)
		}
		emit(*csv, tb)
		fmt.Println("Note: with h = 104 candidates, naive candidate-LRU behaves like sampled LRU")
		fmt.Println("with 104 samples, so it tracks Horizon LRU closely on well-behaved workloads;")
		fmt.Println("Horizon LRU's advantage is its worst-case guarantee (§2.4).")
	}
	if run("timestamps") {
		any = true
		drv.Stepf("ablate: comparing timestamp fidelity")
		rows, err := mosaic.AblateTimestamps("graph500", 16, 1.20, nil, 0, *seed, drv.Workers)
		exitOn(err)
		tb := stats.NewTable("Ablation: timestamp fidelity (graph500, 16 MiB pool, 1.20× footprint)",
			"Regime", "Mosaic (K I/O)", "vs Linux (%)")
		for _, r := range rows {
			tb.AddRow(r.Label, fmt.Sprintf("%.2f", r.MosaicKIO), fmt.Sprintf("%+.2f", r.VsLinuxPct))
			key := "ablate.timestamps." + results.Sanitize(r.Label) + "."
			out.SetMetric(key+"mosaic_kio", r.MosaicKIO)
			out.SetMetric(key+"vs_linux_pct", r.VsLinuxPct)
		}
		emit(*csv, tb)
		fmt.Println("\"exact\" stores per-access timestamps (what real mosaic hardware would")
		fmt.Println("do); \"scan@N\" emulates the Linux prototype: access bits harvested by a")
		fmt.Println("daemon every N references, with the paper's 20% hot-page sampling.")
	}
	if !any {
		fmt.Fprintf(os.Stderr, "ablate: unknown sweep %q\n", *sweep)
		os.Exit(2)
	}
	exitOn(drv.Finish(out))
}

// record mirrors a utilization-sweep table into the JSON result.
func record(sweep string, rows []mosaic.AblateRow) {
	for _, r := range rows {
		key := "ablate." + sweep + "." + results.Sanitize(r.Label) + "."
		out.SetMetric(key+"first_conflict", r.FirstConflict)
		out.SetMetric(key+"first_conflict_sd", r.FirstConflictSD)
		out.SetMetric(key+"associativity", float64(r.Associativity))
		out.SetMetric(key+"cpfn_bits", float64(r.CPFNBits))
	}
}

func render(csv bool, title string, rows []mosaic.AblateRow) {
	tb := stats.NewTable(title, "Setting", "Associativity h", "CPFN bits", "First conflict (1-δ)")
	for _, r := range rows {
		tb.AddRow(r.Label, r.Associativity, r.CPFNBits,
			fmt.Sprintf("%.2f%% ±%.2f", 100*r.FirstConflict, 100*r.FirstConflictSD))
	}
	emit(csv, tb)
}

func emit(csv bool, tb *stats.Table) {
	if csv {
		fmt.Print(tb.CSV())
	} else {
		fmt.Println(tb.String())
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "ablate: %v\n", err)
		os.Exit(1)
	}
}
