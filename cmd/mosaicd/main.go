// Command mosaicd is the live-telemetry daemon: it accepts streaming
// trace sessions over HTTP, runs each through an isolated memory-system
// simulator on a bounded worker pool, and serves Prometheus metrics for
// all of them while they run.
//
// Usage:
//
//	mosaicd [-addr 127.0.0.1:7077] [-workers N] [-queue N] [-sample N]
//	        [-addrfile path] [-final results.json]
//
// Feed it sessions with tracegen:
//
//	tracegen -workload gups -footprint 64 -post http://127.0.0.1:7077
//
// and watch them with mosaicstat:
//
//	mosaicstat watch http://127.0.0.1:7077
//
// On SIGTERM/SIGINT the daemon drains: it stops admitting sessions,
// finishes the in-flight ones, writes the -final results file (the same
// schema-versioned format every batch driver emits), and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mosaic/internal/daemon"
	"mosaic/internal/results"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "listen address (port 0 picks a free port)")
	addrfile := flag.String("addrfile", "", "write the bound address to this file once listening (for scripts using port 0)")
	workers := flag.Int("workers", 0, "concurrent sessions (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 8, "sessions queued beyond the running ones before 503 (-1 = none)")
	sample := flag.Uint64("sample", 1<<16, "default per-session sampling/publication window in references")
	final := flag.String("final", "", "write the drain-time merged results file here on shutdown")
	flag.Parse()

	if err := run(*addr, *addrfile, *workers, *queue, *sample, *final); err != nil {
		fmt.Fprintf(os.Stderr, "mosaicd: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, addrfile string, workers, queue int, sample uint64, final string) error {
	srv := daemon.New(daemon.Config{Workers: workers, Queue: queue, SampleEvery: sample})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if addrfile != "" {
		if err := os.WriteFile(addrfile, []byte(bound+"\n"), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("mosaicd: listening on http://%s (POST /sessions, GET /metrics)\n", bound)

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("mosaicd: %v — draining\n", sig)
	}

	// Drain first (finish in-flight sessions, refuse new ones with 503),
	// then capture the final artifact, then stop serving scrapes.
	srv.Drain()
	if final != "" {
		if err := results.Write(final, srv.ResultsFile()); err != nil {
			return err
		}
		fmt.Printf("mosaicd: wrote %s\n", final)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return hs.Shutdown(ctx)
}
