// Command tracegen captures a workload's memory-reference stream into a
// compact binary trace file, or replays a previously captured trace through
// the memory-system simulator. Traces let a reference stream be simulated
// many times (or inspected) without re-running the workload.
//
// Captures default to the delta-encoded v2 format (-format v1 keeps the
// fixed-record v1 encoding); replay sniffs the magic and accepts both.
//
// Usage:
//
//	tracegen -workload graph500 -footprint 32 -out graph500.trace
//	tracegen -replay graph500.trace [-entries 256] [-arity 4]
//	tracegen -convert old-v1.trace -out new-v2.trace
//	tracegen -workload gups -stats          # just count/summarize
//	tracegen -workload gups -post http://127.0.0.1:7077   # stream to mosaicd
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"

	"mosaic"
	"mosaic/internal/core"
	"mosaic/internal/obs"
	"mosaic/internal/results"
	"mosaic/internal/trace"
)

var progress *obs.Progress

func main() {
	workload := flag.String("workload", "", "workload to capture (graph500, btree, gups, xsbench)")
	footprint := flag.Uint64("footprint", 32, "workload footprint in MiB")
	maxRefs := flag.Uint64("maxrefs", 0, "cap on captured references (0 = full run)")
	out := flag.String("out", "", "output trace file (capture mode)")
	replay := flag.String("replay", "", "trace file to replay through the simulator")
	convert := flag.String("convert", "", "v1 trace file to re-encode as v2 into -out")
	format := flag.String("format", "v2", "capture format: v2 (delta-encoded) or v1 (fixed records)")
	entries := flag.Int("entries", 256, "TLB entries for replay")
	arity := flag.Int("arity", 4, "mosaic arity for replay")
	seed := flag.Uint64("seed", 1, "random seed")
	statsOnly := flag.Bool("stats", false, "summarize the stream without writing a file")
	post := flag.String("post", "", "stream the captured trace to a mosaicd base URL as one live session")
	sample := flag.Uint64("sample", 0, "session sampling window when posting (0 = daemon default)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.Parse()

	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			fail(err)
		}
		defer stop()
	}
	progress = obs.NewProgress(true)
	defer progress.Done()

	switch {
	case *replay != "":
		if err := replayTrace(*replay, *entries, *arity); err != nil {
			fail(err)
		}
	case *convert != "":
		if *out == "" {
			fail(fmt.Errorf("-convert needs -out"))
		}
		if err := convertTrace(*convert, *out); err != nil {
			fail(err)
		}
	case *workload != "" && *post != "":
		if err := postSession(*post, *workload, *footprint<<20, *maxRefs, *seed, *entries, *arity, *sample); err != nil {
			fail(err)
		}
	case *workload != "" && (*out != "" || *statsOnly):
		if err := capture(*workload, *footprint<<20, *maxRefs, *seed, *out, *format, *statsOnly); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// captureSink consumes a capture whole-batch: it tallies reads and writes,
// tracks touched pages (when pages is non-nil), reports progress at every
// 1M-reference boundary, and hands the batch to the encoder (nil when only
// summarizing). The scalar leg wraps one reference and reuses the batch leg,
// so both dispatch paths tally identically.
type captureSink struct {
	name                 string
	verb                 string          // "captured" or "streamed", for the progress line
	enc                  trace.BatchSink // nil in -stats mode
	pages                map[core.VPN]bool
	reads, writes, total uint64
}

func (s *captureSink) Access(va uint64, write bool) {
	var one [1]trace.Ref
	one[0] = trace.MakeRef(va, write)
	s.ProcessBatch(one[:])
}

func (s *captureSink) ProcessBatch(b trace.Batch) {
	for _, r := range b {
		if r.Write() {
			s.writes++
		} else {
			s.reads++
		}
		if s.pages != nil {
			s.pages[core.VPNOf(r.VA())] = true
		}
	}
	if s.enc != nil {
		s.enc.ProcessBatch(b)
	}
	prev := s.total
	s.total += uint64(len(b))
	if s.total>>20 > prev>>20 {
		progress.Stepf("tracegen %s: %d M refs %s", s.name, s.total>>20, s.verb)
	}
}

func capture(name string, footprint, maxRefs, seed uint64, out, format string, statsOnly bool) error {
	w, err := mosaic.NewWorkload(name, footprint, seed)
	if err != nil {
		return err
	}
	cs := &captureSink{name: name, verb: "captured", pages: map[core.VPN]bool{}}

	// Both encoders hide behind BatchSink so the stats pass stays
	// format-blind; the v1 path unrolls each batch into the fixed-record
	// writer, the v2 frame encoder takes batches natively.
	var (
		flush func() error
		count func() uint64
	)
	if !statsOnly {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		switch format {
		case "v2":
			bw, err := trace.NewBatchWriter(f)
			if err != nil {
				return err
			}
			cs.enc = bw
			flush = bw.Flush
			count = bw.Count
		case "v1":
			tw, err := trace.NewWriter(f)
			if err != nil {
				return err
			}
			cs.enc = trace.BatchSinkOf(tw)
			flush = tw.Flush
			count = tw.Count
		default:
			return fmt.Errorf("unknown -format %q (want v1 or v2)", format)
		}
	}

	mosaic.RunBatch(w, cs, maxRefs)
	progress.Done()
	fmt.Printf("%s: %d refs (%d reads, %d writes), %d pages touched, footprint %d MiB\n",
		name, cs.total, cs.reads, cs.writes, len(cs.pages), w.FootprintBytes()>>20)
	if flush != nil {
		if err := flush(); err != nil {
			return err
		}
		info, err := os.Stat(out)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s (%s): %d records, %d bytes (%.2f bytes/record)\n",
			out, format, count(), info.Size(), float64(info.Size())/float64(count()))
	}
	return nil
}

// convertTrace re-encodes a v1 capture as a v2 delta-encoded trace.
func convertTrace(in, out string) error {
	src, err := os.Open(in)
	if err != nil {
		return err
	}
	defer src.Close()
	dst, err := os.Create(out)
	if err != nil {
		return err
	}
	defer dst.Close()
	progress.Stepf("tracegen: converting %s → %s", in, out)
	n, err := trace.ConvertV1(dst, src)
	if err != nil {
		return err
	}
	progress.Done()
	si, err := os.Stat(in)
	if err != nil {
		return err
	}
	so, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("converted %d records: %d → %d bytes (%.1f%% of v1)\n",
		n, si.Size(), so.Size(), 100*float64(so.Size())/float64(si.Size()))
	return nil
}

func replayTrace(path string, entries, arity int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Open(f)
	if err != nil {
		return err
	}
	sim, err := mosaic.NewSimulator(mosaic.SimConfig{
		Frames: 1 << 18,
		Specs: []mosaic.TLBSpec{
			{Geometry: mosaic.TLBGeometry{Entries: entries, Ways: 8}},
			{Geometry: mosaic.TLBGeometry{Entries: entries, Ways: 8}, Arity: arity},
		},
	})
	if err != nil {
		return err
	}
	progress.Stepf("tracegen: replaying %s", path)
	n, err := tr.ReplayBatches(sim)
	if err != nil {
		return err
	}
	progress.Done()
	fmt.Printf("replayed %d refs through a %d-entry 8-way TLB:\n", n, entries)
	for _, r := range sim.Results() {
		fmt.Printf("  %-10s misses=%d (%.3f%% miss rate)\n",
			r.Spec.Label(), r.TLB.Misses, 100*r.TLB.MissRate())
	}
	return nil
}

// postSession captures a workload and streams it — while it is being
// generated, via a pipe — into a running mosaicd as one live session, then
// prints the results file the daemon answers with. The session shows up in
// the daemon's /metrics and in `mosaicstat watch` as it runs.
func postSession(base, name string, footprint, maxRefs, seed uint64, entries, arity int, sample uint64) error {
	w, err := mosaic.NewWorkload(name, footprint, seed)
	if err != nil {
		return err
	}
	q := url.Values{}
	q.Set("label", name)
	q.Set("entries", strconv.Itoa(entries))
	q.Set("arity", strconv.Itoa(arity))
	q.Set("seed", strconv.FormatUint(seed, 10))
	if sample != 0 {
		q.Set("sample", strconv.FormatUint(sample, 10))
	}

	pr, pw := io.Pipe()
	werr := make(chan error, 1)
	go func() {
		// Stream the capture in the v2 format; the daemon sniffs the magic.
		// Batches flow from the generator straight into the frame encoder —
		// no scalar re-batching between the workload and the wire.
		bw, err := trace.NewBatchWriter(pw)
		if err != nil {
			werr <- err
			pw.CloseWithError(err)
			return
		}
		mosaic.RunBatch(w, &captureSink{name: name, verb: "streamed", enc: bw}, maxRefs)
		err = bw.Flush()
		werr <- err
		pw.CloseWithError(err)
	}()

	resp, err := http.Post(base+"/sessions?"+q.Encode(), "application/octet-stream", pr)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if err := <-werr; err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", base, resp.Status, body)
	}
	f, err := results.Decode(body, base)
	if err != nil {
		return err
	}
	progress.Done()
	fmt.Print(f.Format())
	return nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
