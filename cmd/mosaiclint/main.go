// Command mosaiclint runs the repository's static-analysis suite (see
// internal/lint) over the named packages.
//
// Usage:
//
//	go run ./cmd/mosaiclint [flags] [packages]
//
// Packages default to ./... — the whole module. Findings are printed one
// per line as file:line:col: analyzer: message; -json and -sarif select
// the machine-readable encodings (stable ML… rule IDs, line-independent
// fingerprints), and -fix applies the suggested fixes of the mechanical
// analyzers before re-linting. The escape-analysis budget gate (hotalloc)
// runs whenever the whole module is linted; -update-escapes regenerates
// its baseline after a reviewed allocation change. The exit status is 1
// when there are findings, 2 on a load or usage error, 0 otherwise. The
// pre-PR gate (scripts/check.sh) runs mosaiclint alongside go vet.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mosaic/internal/lint"
	"mosaic/internal/obs"
)

func main() {
	os.Exit(run())
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, err)
	return 2
}

func run() int {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as mosaiclint JSON (schema v1) on stdout")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 on stdout")
	fix := flag.Bool("fix", false, "apply suggested fixes, then re-lint and report what remains")
	hotalloc := flag.Bool("hotalloc", true, "run the escape-analysis budget gate when linting the whole module")
	updateEscapes := flag.Bool("update-escapes", false, "regenerate the hotalloc escape baseline from the current tree and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.Parse()
	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		defer stop()
	}
	if *jsonOut && *sarifOut {
		return fail(fmt.Errorf("mosaiclint: -json and -sarif are mutually exclusive"))
	}
	if *list {
		for _, an := range lint.Catalog() {
			fmt.Printf("%-6s %-12s %s\n", an.ID, an.Name, an.Doc)
		}
		return 0
	}

	root, err := lint.ModuleRoot()
	if err != nil {
		return fail(err)
	}
	baseline := filepath.Join(root, lint.EscapeBaselineFile)
	if *updateEscapes {
		if err := lint.WriteEscapeBaseline(root, baseline, lint.HotPathPackages); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "mosaiclint: wrote %s\n", lint.EscapeBaselineFile)
		return 0
	}

	patterns := flag.Args()
	wholeModule := len(patterns) == 0
	if wholeModule {
		patterns = []string{"./..."}
	}
	for _, p := range patterns {
		if p == "./..." {
			wholeModule = true
		}
	}

	diags, err := lintOnce(patterns)
	if err != nil {
		return fail(err)
	}
	if *fix {
		changed, applied, err := lint.ApplyFixes(diags)
		if err != nil {
			return fail(err)
		}
		if applied > 0 {
			fmt.Fprintf(os.Stderr, "mosaiclint: applied %d fix(es) across %d file(s)\n", applied, len(changed))
			// Re-lint so the report reflects the rewritten tree.
			if diags, err = lintOnce(patterns); err != nil {
				return fail(err)
			}
		}
	}

	// The escape gate is a whole-module property (it compiles fixed
	// package patterns from the module root), so it joins the run only
	// when the whole module is being linted.
	if *hotalloc && wholeModule {
		regressions, removed, err := lint.RunHotAlloc(root, baseline, lint.HotPathPackages)
		if err != nil {
			return fail(err)
		}
		diags = append(diags, regressions...)
		lint.SortDiagnostics(diags)
		if len(removed) > 0 {
			fmt.Fprintf(os.Stderr,
				"mosaiclint: %d escape site(s) in the baseline no longer occur; run mosaiclint -update-escapes to bank the improvement\n",
				len(removed))
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		return fail(err)
	}
	switch {
	case *jsonOut:
		if err := lint.WriteJSON(os.Stdout, cwd, diags); err != nil {
			return fail(err)
		}
	case *sarifOut:
		if err := lint.WriteSARIF(os.Stdout, cwd, diags); err != nil {
			return fail(err)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mosaiclint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// lintOnce loads the patterns and runs the per-package analyzer suite.
func lintOnce(patterns []string) ([]lint.Diagnostic, error) {
	passes, err := lint.Load(patterns)
	if err != nil {
		return nil, err
	}
	return lint.RunAll(passes, lint.All()), nil
}
