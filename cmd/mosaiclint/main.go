// Command mosaiclint runs the repository's static-analysis suite (see
// internal/lint) over the named packages.
//
// Usage:
//
//	go run ./cmd/mosaiclint [flags] [packages]
//
// Packages default to ./... — the whole module. Findings are printed one
// per line as file:line:col: analyzer: message; -json and -sarif select
// the machine-readable encodings (stable ML… rule IDs, line-independent
// fingerprints), and -fix applies the suggested fixes of the mechanical
// analyzers before re-linting. -diff <git-ref> lints only the packages
// whose files changed since the ref (tracked changes plus untracked
// files); the compiler gates join such a run only when the change touches
// what they measure.
//
// Three compiler-introspection gates run whenever the whole module is
// linted: hotalloc (escape-analysis budget), bcegate (surviving bounds
// checks), and inlinegate (pinned hot functions stay inlined). Each diffs
// the compiler's report against a checked-in baseline; -update-escapes,
// -update-bce, and -update-inline regenerate those baselines after a
// reviewed change (the flags compose — any combination runs in one
// invocation, then exits).
//
// The exit status is 1 when there are findings, 2 on a load or usage
// error, 0 otherwise. The pre-PR gate (scripts/check.sh) runs mosaiclint
// alongside go vet.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mosaic/internal/lint"
	"mosaic/internal/obs"
)

func main() {
	os.Exit(run())
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, err)
	return 2
}

func run() int {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as mosaiclint JSON (schema v1) on stdout")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 on stdout")
	fix := flag.Bool("fix", false, "apply suggested fixes, then re-lint and report what remains")
	hotalloc := flag.Bool("hotalloc", true, "run the escape-analysis budget gate when linting the whole module")
	bcegate := flag.Bool("bcegate", true, "run the bounds-check gate when linting the whole module")
	inlinegate := flag.Bool("inlinegate", true, "run the inlining gate when linting the whole module")
	updateEscapes := flag.Bool("update-escapes", false, "regenerate the hotalloc escape baseline from the current tree and exit")
	updateBCE := flag.Bool("update-bce", false, "regenerate the bcegate bounds-check baseline from the current tree and exit")
	updateInline := flag.Bool("update-inline", false, "regenerate the inlinegate baseline from the current tree and exit")
	diffRef := flag.String("diff", "", "lint only packages with files changed since this git ref")
	callgraph := flag.String("callgraph", "", "export the whole-program call graph as 'json' or 'dot' on stdout and exit")
	workers := flag.Int("workers", 0, "summary-computation workers (0 = GOMAXPROCS); the output is identical at any count")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.Parse()
	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		defer stop()
	}
	if *jsonOut && *sarifOut {
		return fail(fmt.Errorf("mosaiclint: -json and -sarif are mutually exclusive"))
	}
	if *list {
		for _, an := range lint.Catalog() {
			fmt.Printf("%-6s %-12s %s\n", an.ID, an.Name, an.Doc)
		}
		return 0
	}

	root, err := lint.ModuleRoot()
	if err != nil {
		return fail(err)
	}

	// Baseline updates compose: run every requested one, then exit.
	if *updateEscapes || *updateBCE || *updateInline {
		type update struct {
			requested bool
			file      string
			write     func() error
		}
		updates := []update{
			{*updateEscapes, lint.EscapeBaselineFile, func() error {
				return lint.WriteEscapeBaseline(root, filepath.Join(root, lint.EscapeBaselineFile), lint.HotPathPackages)
			}},
			{*updateBCE, lint.BCEBaselineFile, func() error {
				return lint.WriteBCEBaseline(root, filepath.Join(root, lint.BCEBaselineFile), lint.HotPathPackages)
			}},
			{*updateInline, lint.InlineBaselineFile, func() error {
				return lint.WriteInlineBaseline(root, filepath.Join(root, lint.InlineBaselineFile))
			}},
		}
		for _, u := range updates {
			if !u.requested {
				continue
			}
			if err := u.write(); err != nil {
				return fail(err)
			}
			fmt.Fprintf(os.Stderr, "mosaiclint: wrote %s\n", u.file)
		}
		return 0
	}

	patterns := flag.Args()
	wholeModule := len(patterns) == 0
	if *diffRef != "" {
		if len(patterns) > 0 {
			return fail(fmt.Errorf("mosaiclint: -diff and explicit packages are mutually exclusive"))
		}
		wholeModule = false
	}
	if wholeModule {
		patterns = []string{"./..."}
	}
	for _, p := range patterns {
		if p == "./..." {
			wholeModule = true
		}
	}

	// runGates: the gates are whole-module properties (they compile fixed
	// package patterns from the module root), so they join a full run
	// always and a -diff run only when the change touches what they
	// measure.
	runGates := wholeModule
	if *diffRef != "" {
		changed, err := lint.ChangedFiles(root, *diffRef)
		if err != nil {
			return fail(err)
		}
		patterns = lint.PackagePatterns(root, changed)
		runGates = lint.TouchesGatePaths(changed)
		if len(patterns) == 0 && !runGates {
			fmt.Fprintf(os.Stderr, "mosaiclint: no Go packages changed since %s\n", *diffRef)
			return 0
		}
	}

	if *callgraph != "" {
		if *callgraph != "json" && *callgraph != "dot" {
			return fail(fmt.Errorf("mosaiclint: -callgraph wants 'json' or 'dot', got %q", *callgraph))
		}
		passes, err := lint.Load(patterns)
		if err != nil {
			return fail(err)
		}
		pr := lint.AttachProgram(passes, *workers)
		if pr == nil {
			return fail(fmt.Errorf("mosaiclint: no packages matched %v", patterns))
		}
		if *callgraph == "dot" {
			err = pr.WriteDOT(os.Stdout)
		} else {
			err = pr.WriteJSON(os.Stdout)
		}
		if err != nil {
			return fail(err)
		}
		return 0
	}

	var diags []lint.Diagnostic
	if len(patterns) > 0 {
		if diags, err = lintOnce(patterns, *workers); err != nil {
			return fail(err)
		}
	}
	if *fix {
		changed, applied, err := lint.ApplyFixes(diags)
		if err != nil {
			return fail(err)
		}
		if applied > 0 {
			fmt.Fprintf(os.Stderr, "mosaiclint: applied %d fix(es) across %d file(s)\n", applied, len(changed))
			// Re-lint so the report reflects the rewritten tree.
			if diags, err = lintOnce(patterns, *workers); err != nil {
				return fail(err)
			}
		}
	}

	if runGates {
		if *hotalloc {
			regressions, removed, err := lint.RunHotAlloc(root, filepath.Join(root, lint.EscapeBaselineFile), lint.HotPathPackages)
			if err != nil {
				return fail(err)
			}
			diags = append(diags, regressions...)
			if len(removed) > 0 {
				fmt.Fprintf(os.Stderr,
					"mosaiclint: %d escape site(s) in the baseline no longer occur; run mosaiclint -update-escapes to bank the improvement\n",
					len(removed))
			}
		}
		if *bcegate {
			regressions, removed, err := lint.RunBCEGate(root, filepath.Join(root, lint.BCEBaselineFile), lint.HotPathPackages)
			if err != nil {
				return fail(err)
			}
			diags = append(diags, regressions...)
			if len(removed) > 0 {
				fmt.Fprintf(os.Stderr,
					"mosaiclint: %d bounds check(s) in the baseline no longer occur; run mosaiclint -update-bce to bank the improvement\n",
					len(removed))
			}
		}
		if *inlinegate {
			regressions, removed, err := lint.RunInlineGate(root, filepath.Join(root, lint.InlineBaselineFile))
			if err != nil {
				return fail(err)
			}
			diags = append(diags, regressions...)
			if len(removed) > 0 {
				fmt.Fprintf(os.Stderr,
					"mosaiclint: %d inlining site(s) in the baseline no longer occur; run mosaiclint -update-inline to bank the improvement\n",
					len(removed))
			}
		}
		lint.SortDiagnostics(diags)
	}

	cwd, err := os.Getwd()
	if err != nil {
		return fail(err)
	}
	switch {
	case *jsonOut:
		if err := lint.WriteJSON(os.Stdout, cwd, diags); err != nil {
			return fail(err)
		}
	case *sarifOut:
		if err := lint.WriteSARIF(os.Stdout, cwd, diags); err != nil {
			return fail(err)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mosaiclint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// lintOnce loads the patterns, builds the whole-program call graph with the
// requested worker bound, and runs the analyzer suite.
func lintOnce(patterns []string, workers int) ([]lint.Diagnostic, error) {
	passes, err := lint.Load(patterns)
	if err != nil {
		return nil, err
	}
	lint.AttachProgram(passes, workers)
	return lint.RunAll(passes, lint.All()), nil
}
