// Command mosaiclint runs the repository's static-analysis suite (see
// internal/lint) over the named packages.
//
// Usage:
//
//	go run ./cmd/mosaiclint [-list] [packages]
//
// Packages default to ./... — the whole module. Findings are printed one
// per line as file:line:col: analyzer: message, and the exit status is 1
// when there are findings, 2 on a load or usage error, 0 otherwise. The
// pre-PR gate (scripts/check.sh) runs mosaiclint alongside go vet.
package main

import (
	"flag"
	"fmt"
	"os"

	"mosaic/internal/lint"
	"mosaic/internal/obs"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.Parse()
	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer stop()
	}
	if *list {
		for _, an := range lint.All() {
			fmt.Printf("%-12s %s\n", an.Name, an.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	passes, err := lint.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := lint.RunAll(passes, lint.All())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mosaiclint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
